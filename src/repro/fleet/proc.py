"""One fleet node as a managed ``python -m repro.net`` subprocess.

:class:`NodeProcess` owns exactly one life of one node: spawn with
stdout/stderr appended to a per-node log file, wait for the CLI's
machine-readable ``PLANETP_READY`` line (which carries the bound
ephemeral port), deliver signals, and reap.  A crash/restart schedule
creates a *new* :class:`NodeProcess` per life over the same log path —
each life scans the log only from its own spawn offset, so a restart
never mistakes the previous life's ready line for its own.

Everything here is synchronous process plumbing except the two waits
(:meth:`NodeProcess.wait_ready`, :meth:`NodeProcess.reap`), which poll
with ``asyncio.sleep`` so an orchestrator can wait on a whole launch
batch concurrently.
"""

from __future__ import annotations

import asyncio
import re
import signal
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Sequence

__all__ = ["FleetError", "NodeProcess", "ReadyInfo", "parse_ready"]


class FleetError(RuntimeError):
    """A fleet-level failure: node died early, deadline blown, leak."""


#: The CLI's ready line (see ``repro.net.cli.run``).  Anchored and fully
#: keyed so ordinary human-oriented output can never false-positive.
READY_RE = re.compile(
    r"^PLANETP_READY peer=(?P<peer>\d+) addr=(?P<addr>\S+) "
    r"pid=(?P<pid>\d+) members=(?P<members>\d+)\s*$"
)


@dataclass(frozen=True)
class ReadyInfo:
    """The parsed ``PLANETP_READY`` line of one node life."""

    peer_id: int
    address: str
    pid: int
    members: int


def parse_ready(line: str) -> ReadyInfo | None:
    """Parse one log line; ``None`` if it is not a ready line."""
    match = READY_RE.match(line.strip())
    if match is None:
        return None
    return ReadyInfo(
        peer_id=int(match.group("peer")),
        address=match.group("addr"),
        pid=int(match.group("pid")),
        members=int(match.group("members")),
    )


class NodeProcess:
    """Spawn, observe, signal, and reap one node subprocess."""

    def __init__(
        self,
        peer_id: int,
        args: Sequence[str],
        log_path: str | Path,
        env: dict[str, str] | None = None,
    ) -> None:
        self.peer_id = peer_id
        self.args = list(args)
        self.log_path = Path(log_path)
        self.env = env
        #: parsed ready line of this life (set by :meth:`wait_ready`).
        self.ready: ReadyInfo | None = None
        self._proc: subprocess.Popen | None = None
        self._log_file: IO[bytes] | None = None
        #: log offset this life starts at — ready-line scanning must not
        #: see a previous life's output in a shared restart log.
        self._scan_from = 0

    # -- lifecycle -----------------------------------------------------------

    def spawn(self) -> int:
        """Start the subprocess; returns its OS pid."""
        if self._proc is not None and self._proc.poll() is None:
            raise FleetError(f"node {self.peer_id} is already running")
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        self._scan_from = (
            self.log_path.stat().st_size if self.log_path.exists() else 0
        )
        self._log_file = open(self.log_path, "ab")
        self._proc = subprocess.Popen(
            self.args,
            stdin=subprocess.DEVNULL,
            stdout=self._log_file,
            stderr=subprocess.STDOUT,
            env=self.env,
        )
        return self._proc.pid

    @property
    def os_pid(self) -> int | None:
        """OS pid of the running (or exited-but-unreaped) process."""
        return self._proc.pid if self._proc is not None else None

    @property
    def alive(self) -> bool:
        """True while the subprocess has not exited."""
        return self._proc is not None and self._proc.poll() is None

    @property
    def returncode(self) -> int | None:
        """Exit status, or ``None`` while running / never spawned."""
        return self._proc.poll() if self._proc is not None else None

    # -- readiness -----------------------------------------------------------

    async def wait_ready(self, timeout_s: float) -> ReadyInfo:
        """Wait for this life's ``PLANETP_READY`` line in the log.

        Raises :class:`FleetError` (with the log tail attached, so CI
        failures are debuggable from the message alone) if the process
        exits first or the deadline passes.
        """
        deadline = time.monotonic() + timeout_s
        partial = b""
        offset = self._scan_from
        while True:
            try:
                with open(self.log_path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                chunk = b""
            if chunk:
                offset += len(chunk)
                partial += chunk
                lines = partial.split(b"\n")
                partial = lines.pop()  # tail may be mid-write
                for raw in lines:
                    info = parse_ready(raw.decode("utf-8", errors="replace"))
                    if info is not None and info.peer_id == self.peer_id:
                        self.ready = info
                        return info
            if not self.alive:
                raise FleetError(
                    f"node {self.peer_id} exited with status "
                    f"{self.returncode} before becoming ready\n"
                    f"--- log tail ({self.log_path}) ---\n{self.log_tail()}"
                )
            if time.monotonic() > deadline:
                raise FleetError(
                    f"node {self.peer_id} not ready within {timeout_s:.0f}s\n"
                    f"--- log tail ({self.log_path}) ---\n{self.log_tail()}"
                )
            await asyncio.sleep(0.05)

    def log_tail(self, lines: int = 15) -> str:
        """The last ``lines`` lines of the node's log (for diagnostics)."""
        try:
            with open(self.log_path, "rb") as fh:
                fh.seek(0, 2)
                size = fh.tell()
                fh.seek(max(0, size - 8192))
                text = fh.read().decode("utf-8", errors="replace")
        except OSError:
            return "<log unreadable>"
        return "\n".join(text.splitlines()[-lines:])

    # -- signalling & reaping ------------------------------------------------

    def _signal(self, sig: int) -> None:
        if self.alive:
            assert self._proc is not None
            self._proc.send_signal(sig)

    def interrupt(self) -> None:
        """SIGINT: the CLI's graceful-exit path (checkpoint + close)."""
        self._signal(signal.SIGINT)

    def terminate(self) -> None:
        """SIGTERM: immediate default-action death, no cleanup."""
        self._signal(signal.SIGTERM)

    def sigkill(self) -> None:
        """SIGKILL: the crash-schedule signal — nothing runs, ever."""
        self._signal(signal.SIGKILL)

    async def reap(self, timeout_s: float) -> bool:
        """Collect the exit status; True once reaped (or never spawned)."""
        if self._proc is None:
            return True
        deadline = time.monotonic() + timeout_s
        while self._proc.poll() is None:
            if time.monotonic() > deadline:
                return False
            await asyncio.sleep(0.1)
        if self._log_file is not None:
            self._log_file.close()
            self._log_file = None
        return True
