"""Multi-process fleet orchestration (500+ real-socket nodes).

Everything above the in-process acceptance suites runs at most a dozen
loopback peers, but the paper's headline claims — propagation time,
join traffic, convergence under churn (Figs. 2-5) — are about
*community-scale* behavior.  This package stands up that community for
real: N ``python -m repro.net`` subprocesses on localhost ephemeral
ports, driven through scripted scenarios and measured from the outside.

Layers:

* :mod:`~repro.fleet.proc` — one node subprocess: spawn, parse the
  CLI's ``PLANETP_READY`` line for the bound port, SIGKILL, reap.
* :mod:`~repro.fleet.scenario` — the seeded script: corpora, queries,
  publish waves, crash schedule.  Everything derives from one integer
  seed, so a fleet run is reproducible end to end.
* :mod:`~repro.fleet.orchestrator` — the conductor: staggered launch,
  stats scraping over the ``StatsRequest`` wire message, control-plane
  publish waves (``PublishRequest``), crash/warm-restart, an in-process
  observer node that joins the fleet to issue ranked searches, and
  guaranteed process reaping.
* :mod:`~repro.fleet.oracle` — the full-directory in-process community
  built from the same scenario, whose ranked results are the ground
  truth fleet searches are scored against.
* :mod:`~repro.fleet.invariants` — the fleet-level checks: the Fig.-2
  convergence bound, recall@k, per-node gossip bytes, leak detection.

``scripts/fleet.py`` and ``benchmarks/bench_fleet.py`` are thin CLI
wrappers over :func:`~repro.fleet.orchestrator.run_scenario`;
``tests/test_fleet_small.py`` (tier 1) and ``tests/test_fleet_scale.py``
(the 500-node CI job) gate the invariants.
"""

from repro.fleet.invariants import (
    FleetReport,
    convergence_bound_s,
    gossip_bytes_per_round,
    recall_at_k,
)
from repro.fleet.oracle import FleetOracle
from repro.fleet.orchestrator import Fleet, FleetError, run_scenario
from repro.fleet.proc import NodeProcess, ReadyInfo, parse_ready
from repro.fleet.scenario import FleetSpec, Scenario, build_scenario

__all__ = [
    "Fleet",
    "FleetError",
    "FleetOracle",
    "FleetReport",
    "FleetSpec",
    "NodeProcess",
    "ReadyInfo",
    "Scenario",
    "build_scenario",
    "convergence_bound_s",
    "gossip_bytes_per_round",
    "parse_ready",
    "recall_at_k",
    "run_scenario",
]
