"""The fleet conductor: launch, measure, perturb, and reap real nodes.

:class:`Fleet` drives N ``python -m repro.net`` subprocesses through a
:class:`~repro.fleet.scenario.Scenario`:

* **staggered launch** — a seed node, then batches that each bootstrap
  off a random already-ready member (so join load spreads instead of
  hammering node 0), every node on ``--port 0`` with its bound address
  parsed from the ``PLANETP_READY`` line;
* **outside-in measurement** — each node's metrics are scraped over the
  ``StatsRequest`` wire message with bounded concurrency; directory
  convergence is "every node's ``planetp_node_directory_size`` gauge
  reports full membership";
* **control plane** — publish waves are injected with the
  ``PublishRequest`` RPC at exact scenario moments (the document takes
  the node's ordinary publish path: WAL when durable, index, filter
  flush, BF_UPDATE rumor);
* **an observer** — one in-process :class:`~repro.net.node.NetworkPeer`
  joins the live fleet and fronts it with a
  :class:`~repro.serve.scheduler.QueryScheduler`, so ranked searches,
  freshness checks, and document fetches run through the production
  query plane rather than a test backdoor;
* **churn** — SIGKILL per the crash schedule, warm restart from the
  same ``--data-dir`` (new ephemeral port; the community relearns the
  address from the REJOIN rumor, exactly as the paper prescribes);
* **guaranteed reaping** — graceful SIGINT sweep, bounded wait, SIGKILL
  stragglers, then a leak audit of processes and ports.

:func:`run_scenario` strings those into the full timeline and returns a
:class:`~repro.fleet.invariants.FleetReport`.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import random
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable

import repro
from repro.constants import BloomConfig, GossipConfig, NetConfig, PartialViewConfig
from repro.content import ContentClient, ContentNotFound
from repro.fleet.invariants import (
    FleetReport,
    convergence_bound_s,
    recall_at_k,
)
from repro.fleet.oracle import FleetOracle
from repro.fleet.proc import FleetError, NodeProcess, ReadyInfo
from repro.fleet.scenario import FleetSpec, Scenario, build_scenario
from repro.net import codec
from repro.net.codec import PublishAck, PublishRequest, StatsRequest, StatsResponse
from repro.net.node import NetworkPeer
from repro.net.transport import TcpTransport, TransportError
from repro.obs import Registry
from repro.serve.scheduler import QueryScheduler
from repro.text.document import Document

__all__ = ["Fleet", "FleetError", "run_scenario", "run_scenario_async"]

#: directory-size gauge every convergence check reads.
_DIRECTORY_GAUGE = "planetp_node_directory_size"


def _subprocess_env() -> dict[str, str]:
    """The child environment, with this interpreter's ``repro`` first on
    ``PYTHONPATH`` — fleets must run the code under test even when the
    orchestrating process imported it from a source tree."""
    pkg_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    previous = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        pkg_root if not previous else pkg_root + os.pathsep + previous
    )
    return env


class Fleet:
    """N live node subprocesses plus the plumbing to drive and read them."""

    def __init__(
        self,
        scenario: Scenario,
        root: str | Path,
        log_dir: str | Path | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.scenario = scenario
        self.spec = scenario.spec
        self.root = Path(root)
        self.log_dir = Path(log_dir) if log_dir is not None else self.root / "logs"
        self.say = progress if progress is not None else lambda _msg: None
        #: live (or most recent) process per peer id.
        self.procs: dict[int, NodeProcess] = {}
        #: current serving address per peer id.
        self.addresses: dict[int, str] = {}
        self.transport = TcpTransport(NetConfig())
        # The fleet's own randomness (bootstrap targets, observer join
        # point) keys off the scenario seed too: one seed, one run.
        self._rng = random.Random(self.spec.seed ^ 0x5EED)
        self._scrape_gate = asyncio.Semaphore(self.spec.scrape_concurrency)
        self._env = _subprocess_env()
        self.observer: NetworkPeer | None = None
        self.scheduler: QueryScheduler | None = None
        self._content_client: ContentClient | None = None

    # -- layout --------------------------------------------------------------

    def corpus_dir(self, pid: int) -> Path:
        """Where node ``pid``'s startup ``--corpus`` tree lives."""
        return self.root / "corpus" / f"n{pid:04d}"

    def data_dir(self, pid: int) -> Path:
        """Durable node ``pid``'s ``--data-dir``."""
        return self.root / "data" / f"n{pid:04d}"

    def log_path(self, pid: int) -> Path:
        """Node ``pid``'s log file (shared across restarts)."""
        return self.log_dir / f"n{pid:04d}.log"

    def write_corpora(self) -> None:
        """Materialize every node's scenario corpus as ``*.txt`` files."""
        for pid, docs in enumerate(self.scenario.corpus):
            directory = self.corpus_dir(pid)
            directory.mkdir(parents=True, exist_ok=True)
            for doc in docs:
                (directory / f"{doc.doc_id}.txt").write_text(
                    doc.text, encoding="utf-8"
                )

    def _node_args(self, pid: int, bootstrap: str | None) -> list[str]:
        args = [
            sys.executable,
            "-u",
            "-m",
            "repro.net",
            "--peer-id", str(pid),
            "--port", "0",
            "--corpus", str(self.corpus_dir(pid)),
            "--gossip-interval", str(self.spec.gossip_interval_s),
            "--bloom-bits", str(self.spec.bloom_bits),
            "--bloom-hashes", str(self.spec.bloom_hashes),
        ]
        if bootstrap is not None:
            args += ["--bootstrap", bootstrap]
        if self.spec.replicas > 0:
            args += ["--replicas", str(self.spec.replicas)]
        if self.spec.analytics:
            args += ["--analytics"]
        if self.spec.partial_view:
            args += [
                "--partial-view",
                "--shards", str(self.spec.resolved_num_shards),
                "--view-sample", str(self.spec.view_sample),
            ]
        if pid in self.scenario.durable_pids:
            # Durable exactly where the crash schedule needs it; fsync
            # off — the WAL still reaches the OS on every append, so a
            # SIGKILL (not a host crash) loses nothing.
            args += [
                "--data-dir", str(self.data_dir(pid)),
                "--snapshot-every", str(self.spec.snapshot_every),
                "--no-fsync",
            ]
        return args

    # -- launch --------------------------------------------------------------

    async def launch(self) -> float:
        """Staggered batched launch; seconds from first spawn to last ready."""
        self.write_corpora()
        self.log_dir.mkdir(parents=True, exist_ok=True)
        started = time.monotonic()
        ready_addrs: list[str] = []
        await self._launch_batch([0], ready_addrs)
        pending = list(range(1, self.spec.num_nodes))
        while pending:
            batch = pending[: self.spec.launch_batch]
            pending = pending[self.spec.launch_batch :]
            await self._launch_batch(batch, ready_addrs)
            self.say(
                f"fleet: {len(ready_addrs)}/{self.spec.num_nodes} nodes ready"
            )
        return time.monotonic() - started

    async def _launch_batch(
        self, pids: list[int], ready_addrs: list[str]
    ) -> None:
        batch = []
        for pid in pids:
            bootstrap = self._rng.choice(ready_addrs) if ready_addrs else None
            proc = NodeProcess(
                pid, self._node_args(pid, bootstrap), self.log_path(pid),
                env=self._env,
            )
            proc.spawn()
            self.procs[pid] = proc
            batch.append(proc)
        infos = await asyncio.gather(
            *(p.wait_ready(self.spec.ready_timeout_s) for p in batch)
        )
        for info in infos:
            self.addresses[info.peer_id] = info.address
            ready_addrs.append(info.address)

    # -- scraping ------------------------------------------------------------

    async def scrape(self, pid: int) -> dict[str, float] | None:
        """One node's metrics as a name→value dict (None if unreachable)."""
        address = self.addresses.get(pid)
        if address is None:
            return None
        async with self._scrape_gate:
            try:
                body = await self.transport.request(
                    address, codec.encode(StatsRequest())
                )
            except TransportError:
                return None
        reply = codec.decode(body)
        if not isinstance(reply, StatsResponse):
            return None
        return dict(reply.samples)

    async def scrape_all(self) -> dict[int, dict[str, float]]:
        """Metrics from every live node (unreachable nodes omitted)."""
        pids = [pid for pid, proc in self.procs.items() if proc.alive]
        results = await asyncio.gather(*(self.scrape(pid) for pid in pids))
        return {
            pid: samples
            for pid, samples in zip(pids, results)
            if samples is not None
        }

    async def await_convergence(self, expected: int, timeout_s: float) -> float:
        """Seconds until every node's directory gauge reports ``expected``
        members; raises :class:`FleetError` past ``timeout_s``."""
        started = time.monotonic()
        last_said = 0.0
        poll_s = max(0.2, self.spec.gossip_interval_s / 2)
        while True:
            stats = await self.scrape_all()
            converged = sum(
                1
                for samples in stats.values()
                if samples.get(_DIRECTORY_GAUGE, 0.0) >= expected
            )
            elapsed = time.monotonic() - started
            if converged == self.spec.num_nodes:
                return elapsed
            if elapsed > timeout_s:
                raise FleetError(
                    f"directory convergence timed out after {elapsed:.1f}s: "
                    f"{converged}/{self.spec.num_nodes} nodes at "
                    f"{expected} members ({len(stats)} scrapable)"
                )
            if elapsed - last_said > 5.0:
                self.say(
                    f"fleet: {converged}/{self.spec.num_nodes} directories "
                    f"converged after {elapsed:.1f}s"
                )
                last_said = elapsed
            await asyncio.sleep(poll_s)

    # -- control plane -------------------------------------------------------

    async def publish(self, pid: int, doc: Document) -> PublishAck:
        """Inject ``doc`` at node ``pid``; raises unless acked accepted."""
        body = await self.transport.request(
            self.addresses[pid], codec.encode(PublishRequest(doc.doc_id, doc.text))
        )
        reply = codec.decode(body)
        if not isinstance(reply, PublishAck) or not reply.accepted:
            raise FleetError(
                f"node {pid} did not accept publish of {doc.doc_id!r}: {reply!r}"
            )
        return reply

    async def top_terms(self, pid: int, k: int) -> list[str] | None:
        """One node's community top-``k`` term estimate over the wire
        (``None`` if unreachable or not serving analytics)."""
        from repro.gossip.wire import TopTermsReply, TopTermsRequest

        address = self.addresses.get(pid)
        if address is None:
            return None
        async with self._scrape_gate:
            try:
                body = await self.transport.request(
                    address, codec.encode(TopTermsRequest(k))
                )
            except TransportError:
                return None
        reply = codec.decode(body)
        if not isinstance(reply, TopTermsReply):
            return None
        return [term for term, _count in reply.entries]

    # -- the content plane ----------------------------------------------------

    def content_client(self) -> ContentClient:
        """The fleet's retrieval client (shared transport, lazy)."""
        if self._content_client is None:
            self._content_client = ContentClient(
                self.transport, request_timeout_s=10.0
            )
        return self._content_client

    async def fetch_content(self, doc_id: str, via: list[str]) -> bytes | None:
        """Fetch ``doc_id`` through the content plane starting from the
        ``via`` addresses; ``None`` when no verified copy is reachable."""
        try:
            return await self.content_client().fetch(via, doc_id)
        except ContentNotFound:
            return None

    async def await_replication(self, total_docs: int, timeout_s: float) -> float:
        """Seconds until every node is at the replication fixed point:
        each node's ``docs_fully_replicated`` gauge equals its
        ``docs_held``, and the community holds at least ``replicas``
        copies' worth of documents.  Gates the crash schedule — a doc
        SIGKILLed with its origin before this point is unrecoverable."""
        started = time.monotonic()
        poll_s = max(0.2, self.spec.gossip_interval_s / 2)
        live = sum(1 for proc in self.procs.values() if proc.alive)
        floor = total_docs * self.spec.replicas
        while True:
            stats = await self.scrape_all()
            held = sum(
                s.get("planetp_content_docs_held", 0.0) for s in stats.values()
            )
            settled = (
                len(stats) >= live
                and held >= floor
                and all(
                    s.get("planetp_content_docs_held", 0.0)
                    == s.get("planetp_content_docs_fully_replicated", -1.0)
                    for s in stats.values()
                )
            )
            elapsed = time.monotonic() - started
            if settled:
                return elapsed
            if elapsed > timeout_s:
                raise FleetError(
                    f"content replication not settled after {elapsed:.1f}s: "
                    f"{held:.0f} copies held across {len(stats)} nodes "
                    f"(floor {floor})"
                )
            await asyncio.sleep(poll_s)

    def kill(self, pid: int) -> None:
        """SIGKILL node ``pid`` (the crash schedule — no cleanup runs)."""
        self.procs[pid].sigkill()

    async def restart(self, pid: int) -> ReadyInfo:
        """Respawn a killed node on its old ``--data-dir`` (new port)."""
        await self.procs[pid].reap(10.0)
        live = [
            self.addresses[p]
            for p, proc in self.procs.items()
            if p != pid and proc.alive
        ]
        if not live:
            raise FleetError("no live node left to bootstrap a restart from")
        proc = NodeProcess(
            pid,
            self._node_args(pid, self._rng.choice(live)),
            self.log_path(pid),
            env=self._env,
        )
        proc.spawn()
        self.procs[pid] = proc
        info = await proc.wait_ready(self.spec.ready_timeout_s)
        self.addresses[pid] = info.address
        return info

    # -- the observer --------------------------------------------------------

    async def start_observer(self) -> QueryScheduler:
        """Join an in-process observer node and front it with the query
        plane.  Its own registry keeps fleet metrics out of the global one."""
        spec = self.spec
        self.observer = NetworkPeer(
            spec.num_nodes,
            "127.0.0.1",
            0,
            gossip_config=GossipConfig(
                base_interval_s=spec.gossip_interval_s,
                max_interval_s=spec.gossip_interval_s * 2,
            ),
            bloom_config=BloomConfig(
                num_bits=spec.bloom_bits, num_hashes=spec.bloom_hashes
            ),
            registry=Registry(),
            # The observer searches the same way the fleet's members do:
            # under partial view its queries exercise the shard fan-out.
            partial_view=PartialViewConfig(
                num_shards=spec.resolved_num_shards,
                sample_size=spec.view_sample,
            )
            if spec.partial_view
            else None,
        )
        await self.observer.start()
        await self.observer.join(self._rng.choice(list(self.addresses.values())))
        self.observer.run()
        self.scheduler = QueryScheduler(self.observer)
        return self.scheduler

    # -- teardown ------------------------------------------------------------

    async def stop(self, reap_timeout_s: float | None = None) -> tuple[int, int, int]:
        """Stop everything; returns (forced_kills, leaked_procs, leaked_ports).

        Graceful first (SIGINT runs each node's checkpoint-and-close
        path), SIGKILL for stragglers, then the leak audit the scale
        test gates on: no process unreaped, no port still accepting.
        """
        if self.observer is not None:
            await self.observer.stop()
            self.observer = None
            self.scheduler = None
        if reap_timeout_s is None:
            # Every node finalizes concurrently but shares the host CPU.
            reap_timeout_s = 30.0 + 0.2 * len(self.procs)
        for proc in self.procs.values():
            proc.interrupt()
        deadline = time.monotonic() + reap_timeout_s
        forced = 0
        for proc in self.procs.values():
            remaining = max(0.0, deadline - time.monotonic())
            if not await proc.reap(remaining):
                proc.sigkill()
                forced += 1
        leaked_procs = 0
        for proc in self.procs.values():
            if not await proc.reap(5.0):
                leaked_procs += 1
        leaked_ports = await self._count_open_ports()
        await self.transport.close()
        return forced, leaked_procs, leaked_ports

    async def _count_open_ports(self) -> int:
        """How many node addresses still accept connections (should be 0)."""
        leaked = 0
        for address in self.addresses.values():
            host, _, port = address.rpartition(":")
            try:
                _reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(host, int(port)), 1.0
                )
            except (OSError, asyncio.TimeoutError):
                continue
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            leaked += 1
        return leaked


# ---------------------------------------------------------------------------
# the scripted timeline
# ---------------------------------------------------------------------------


async def run_scenario_async(
    spec: FleetSpec,
    root: str | Path | None = None,
    log_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> FleetReport:
    """Run the full fleet timeline for ``spec``; see :func:`run_scenario`."""
    say = progress if progress is not None else lambda _msg: None
    scenario = build_scenario(spec)
    cleanup_root = root is None
    root = (
        Path(tempfile.mkdtemp(prefix="planetp-fleet-")) if root is None else Path(root)
    )
    fleet = Fleet(scenario, root, log_dir=log_dir, progress=progress)
    bound = convergence_bound_s(
        spec.num_nodes, spec.gossip_interval_s, spec.convergence_slack_s
    )
    poll_s = max(0.2, spec.gossip_interval_s / 2)
    m: dict = {}
    try:
        say(f"fleet: launching {spec.num_nodes} nodes under {root}")
        m["launch_s"] = await fleet.launch()
        say(f"fleet: all nodes ready in {m['launch_s']:.1f}s")

        m["convergence_s"] = await fleet.await_convergence(spec.num_nodes, bound)
        say(
            f"fleet: directories converged in {m['convergence_s']:.1f}s "
            f"(bound {bound:.1f}s)"
        )

        scheduler = await fleet.start_observer()
        client = scheduler.client
        oracle = FleetOracle(scenario)

        # Baseline: ranked recall of the live fleet vs. the oracle.
        recalls = []
        for query in scenario.queries:
            served = await scheduler.ranked(query, spec.top_k)
            expected = oracle.ranked_ids(query, spec.top_k)
            recalls.append(
                recall_at_k(expected, [d.doc_id for d in served.results])
            )
        m["recall"] = statistics.fmean(recalls)
        m["recall_min"] = min(recalls)
        say(f"fleet: baseline recall {m['recall']:.3f} (min {m['recall_min']:.3f})")

        # Analytics: every node's gossiped top-k frequent-term estimate
        # must agree with the exact oracle (startup corpora) within the
        # same Fig.-2 bound the directory itself converges under.
        m["analytics"] = spec.analytics
        m["analytics_precision_min"] = 1.0
        m["analytics_convergence_s"] = 0.0
        m["analytics_bytes_per_round"] = 0.0
        if spec.analytics:
            expected_terms = set(oracle.top_terms(spec.analytics_top_k))
            analytics_started = time.monotonic()
            analytics_deadline = analytics_started + bound
            while True:
                estimates = await asyncio.gather(
                    *(
                        fleet.top_terms(pid, spec.analytics_top_k)
                        for pid in range(spec.num_nodes)
                    )
                )
                precisions = [
                    len(set(est or ()) & expected_terms) / len(expected_terms)
                    for est in estimates
                ]
                m["analytics_precision_min"] = min(precisions)
                m["analytics_convergence_s"] = time.monotonic() - analytics_started
                if m["analytics_precision_min"] >= 0.9:
                    break
                if time.monotonic() > analytics_deadline:
                    break
                await asyncio.sleep(poll_s)
            say(
                f"fleet: analytics top-{spec.analytics_top_k} precision "
                f"{m['analytics_precision_min']:.3f} after "
                f"{m['analytics_convergence_s']:.1f}s"
            )

        # Publish waves: measure propagation, then prove freshness — the
        # cache was primed with the pre-wave answer, so serving anything
        # but the new documents afterwards is a stale serve.
        stale_serves = 0
        wave_propagation = []
        for wave in scenario.waves:
            await scheduler.ranked(wave.query, spec.top_k)
            wave_started = time.monotonic()
            for pid, doc in wave.publishes:
                await fleet.publish(pid, doc)
            oracle.apply_wave(wave)
            wave_ids = set(wave.doc_ids)
            wave_deadline = wave_started + bound
            while True:
                direct = await client.ranked_search(wave.query, spec.top_k)
                if wave_ids <= {d.doc_id for d in direct.results}:
                    break
                if time.monotonic() > wave_deadline:
                    raise FleetError(
                        f"wave {wave.index} not searchable within {bound:.1f}s"
                    )
                await asyncio.sleep(poll_s)
            wave_propagation.append(time.monotonic() - wave_started)
            served = await scheduler.ranked(wave.query, spec.top_k)
            if wave_ids - {d.doc_id for d in served.results}:
                stale_serves += 1
            say(
                f"fleet: wave {wave.index} searchable after "
                f"{wave_propagation[-1]:.1f}s"
            )
        m["stale_serves"] = stale_serves
        m["wave_propagation_s"] = wave_propagation

        # Content plane: wait for the replication fixed point, then
        # retrieve every wave document byte-identically through the
        # chunked-transfer protocol (manifest digest verified in fetch).
        m["content_replicas"] = spec.replicas
        m["replication_s"] = 0.0
        m["content_fetches_expected"] = 0
        m["content_fetches_ok"] = 0
        m["churn_fetches_ok"] = True
        m["orphan_chunk_bytes_max"] = 0.0
        if spec.replicas > 0:
            total_docs = spec.num_nodes * spec.docs_per_node + sum(
                len(w.publishes) for w in scenario.waves
            )
            m["replication_s"] = await fleet.await_replication(total_docs, bound)
            say(
                f"fleet: {total_docs} documents at {spec.replicas}-way "
                f"replication after {m['replication_s']:.1f}s"
            )
            fetch_docs = [
                doc for wave in scenario.waves for _pid, doc in wave.publishes
            ]
            fetched_ok = 0
            for doc in fetch_docs:
                via = fleet._rng.choice(list(fleet.addresses.values()))
                data = await fleet.fetch_content(doc.doc_id, [via])
                if data == doc.text.encode("utf-8"):
                    fetched_ok += 1
            m["content_fetches_expected"] = len(fetch_docs)
            m["content_fetches_ok"] = fetched_ok
            say(
                f"fleet: retrieved {fetched_ok}/{len(fetch_docs)} wave "
                f"documents byte-identical"
            )

        # Crash schedule: SIGKILL, keep serving, warm restart, recover.
        m["crash_pids"] = list(scenario.crash_pids)
        m["crash_search_ok"] = True
        m["recovery_s"] = 0.0
        if scenario.crash_pids:
            say(f"fleet: SIGKILL nodes {list(scenario.crash_pids)}")
            for pid in scenario.crash_pids:
                fleet.kill(pid)
            for query in scenario.queries[:2]:
                try:
                    await scheduler.ranked(query, spec.top_k)
                except Exception:
                    m["crash_search_ok"] = False
            if spec.replicas > 0:
                # Retrieval under churn: each SIGKILLed origin's sentinel
                # document must still come back byte-identical from the
                # surviving replicas while the origin is down.
                survivors = [
                    fleet.addresses[p]
                    for p, proc in fleet.procs.items()
                    if proc.alive
                ]
                churn_pending = {
                    pid: scenario.sentinel_doc(pid)
                    for pid in scenario.crash_pids
                }
                churn_deadline = time.monotonic() + bound
                while churn_pending:
                    for pid, doc in list(churn_pending.items()):
                        data = await fleet.fetch_content(
                            doc.doc_id, [fleet._rng.choice(survivors)]
                        )
                        if data == doc.text.encode("utf-8"):
                            del churn_pending[pid]
                    if not churn_pending:
                        break
                    if time.monotonic() > churn_deadline:
                        m["churn_fetches_ok"] = False
                        break
                    await asyncio.sleep(poll_s)
                say(
                    "fleet: retrieval under churn "
                    + ("ok" if m["churn_fetches_ok"] else
                       f"FAILED for {sorted(churn_pending)}")
                )
            restart_started = time.monotonic()
            for pid in scenario.crash_pids:
                await fleet.restart(pid)
            pending = {
                pid: scenario.sentinel_doc(pid) for pid in scenario.crash_pids
            }
            recovery_deadline = restart_started + bound + spec.ready_timeout_s
            while pending:
                recovered = []
                for pid, doc in pending.items():
                    fetched = await client.fetch(pid, doc.doc_id)
                    if fetched is not None and fetched.text == doc.text:
                        recovered.append(pid)
                for pid in recovered:
                    del pending[pid]
                if not pending:
                    break
                if time.monotonic() > recovery_deadline:
                    raise FleetError(
                        f"nodes {sorted(pending)} not recovered within "
                        f"{bound + spec.ready_timeout_s:.1f}s of restart"
                    )
                await asyncio.sleep(poll_s)
            m["recovery_s"] = time.monotonic() - restart_started
            say(f"fleet: crash schedule recovered in {m['recovery_s']:.1f}s")

        # Post-recovery recall over base + wave queries.  The sentinel
        # fetch above only proves the restarted nodes are serving again;
        # the rest of the fleet re-learns their filters (and, under
        # --partial-view, refolds them into shard summaries) over the
        # next few gossip rounds.  Poll within the convergence bound
        # until recall is back to the pre-crash baseline instead of
        # snapshotting that race.
        post_queries = [*scenario.queries, *(w.query for w in scenario.waves)]
        recall_deadline = time.monotonic() + bound
        while True:
            recalls2 = []
            for query in post_queries:
                served = await scheduler.ranked(query, spec.top_k)
                expected = oracle.ranked_ids(query, spec.top_k)
                recalls2.append(
                    recall_at_k(expected, [d.doc_id for d in served.results])
                )
            m["recall_after_recovery"] = statistics.fmean(recalls2)
            if not scenario.crash_pids:
                break
            if m["recall_after_recovery"] >= min(1.0, m["recall"]):
                break
            if time.monotonic() > recall_deadline:
                break
            await asyncio.sleep(poll_s)

        # Handoff hygiene: once the restarted nodes are back on the ring,
        # every node's orphaned-copy gauge must drain to zero — churn may
        # never strand chunk bytes nobody is responsible for.
        if spec.replicas > 0 and scenario.crash_pids:
            orphan_deadline = time.monotonic() + bound
            while True:
                orphan_stats = await fleet.scrape_all()
                orphans = [
                    s.get("planetp_content_orphan_chunk_bytes", 0.0)
                    for s in orphan_stats.values()
                ]
                m["orphan_chunk_bytes_max"] = max(orphans) if orphans else 0.0
                if m["orphan_chunk_bytes_max"] == 0.0:
                    break
                if time.monotonic() > orphan_deadline:
                    break
                await asyncio.sleep(poll_s)
            say(
                f"fleet: orphaned chunk bytes after churn: "
                f"{m['orphan_chunk_bytes_max']:.0f}"
            )

        # Cost: what the convergence and churn above took on the wire.
        stats = await fleet.scrape_all()
        byte_totals = [
            s.get("planetp_node_gossip_real_bytes_total", 0.0)
            for s in stats.values()
        ]
        round_totals = [
            s.get("planetp_node_gossip_rounds_total", 0.0) for s in stats.values()
        ]
        m["gossip_bytes_per_node"] = (
            statistics.fmean(byte_totals) if byte_totals else 0.0
        )
        m["gossip_rounds_per_node"] = (
            statistics.fmean(round_totals) if round_totals else 0.0
        )
        total_rounds = sum(round_totals)
        m["gossip_bytes_per_round"] = (
            sum(byte_totals) / total_rounds if total_rounds else 0.0
        )
        if spec.analytics:
            analytics_totals = [
                s.get("planetp_node_analytics_real_bytes_total", 0.0)
                for s in stats.values()
            ]
            m["analytics_bytes_per_round"] = (
                sum(analytics_totals) / total_rounds if total_rounds else 0.0
            )
        # Directory memory + partial-view traffic: the sublinearity gate
        # compares these means across flat and partial-view runs.
        filter_bytes = [
            s.get("planetp_node_directory_filter_bytes", 0.0)
            for s in stats.values()
        ]
        pv_bytes = [
            s.get("planetp_node_partialview_real_bytes_total", 0.0)
            for s in stats.values()
        ]
        m["partial_view"] = spec.partial_view
        m["directory_filter_bytes_per_node"] = (
            statistics.fmean(filter_bytes) if filter_bytes else 0.0
        )
        m["partialview_bytes_per_node"] = (
            statistics.fmean(pv_bytes) if pv_bytes else 0.0
        )
    finally:
        forced, leaked_procs, leaked_ports = await fleet.stop()
        if cleanup_root:
            shutil.rmtree(root, ignore_errors=True)

    report = FleetReport(
        num_nodes=spec.num_nodes,
        seed=spec.seed,
        convergence_bound_s=bound,
        forced_kills=forced,
        leaked_processes=leaked_procs,
        leaked_ports=leaked_ports,
        **m,
    )
    say(f"fleet: done — {len(report.violations()) or 'no'} violation(s)")
    return report


def run_scenario(
    spec: FleetSpec,
    root: str | Path | None = None,
    log_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> FleetReport:
    """Launch a fleet per ``spec``, run the scripted timeline, and return
    the measured :class:`~repro.fleet.invariants.FleetReport`.

    ``root`` holds corpora, data dirs, and (by default) logs; a
    temporary directory is created and removed when omitted.  Pass
    ``log_dir`` to keep per-node logs somewhere durable (CI uploads
    them as an artifact on failure).  ``progress`` receives one-line
    status updates.  Teardown always runs — the fleet is reaped even
    when the scenario fails.
    """
    return asyncio.run(run_scenario_async(spec, root, log_dir, progress))
