"""Discrete-event simulation substrate.

The paper evaluates gossiping with a simulator parameterized by measured
constants (Table 2).  This package provides the event engine, the
link/bandwidth model, the community topologies (LAN / DSL / MIX), churn
processes, and measurement plumbing that the gossip simulation builds on.
"""

from repro.sim.engine import Simulator, Event
from repro.sim.network import Network, TransferStats
from repro.sim.topology import (
    TOPOLOGIES,
    lan_topology,
    dsl_topology,
    mix_topology,
    make_topology,
)
from repro.sim.churn import ChurnModel, OnOffSchedule
from repro.sim.metrics import BandwidthSeries, ConvergenceTracker

__all__ = [
    "Simulator",
    "Event",
    "Network",
    "TransferStats",
    "TOPOLOGIES",
    "lan_topology",
    "dsl_topology",
    "mix_topology",
    "make_topology",
    "ChurnModel",
    "OnOffSchedule",
    "BandwidthSeries",
    "ConvergenceTracker",
]
