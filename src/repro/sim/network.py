"""Link and transfer model.

Each peer owns an access link with a speed in bytes/second (Table 2 spans
56 Kb/s to 45 Mb/s).  A transfer of S bytes between x and y starts when
both links are free and lasts ``S / min(speed_x, speed_y)`` plus a fixed
propagation latency; each link is then busy until the transfer ends.  This
serializing busy-until model is the standard first-order approximation for
access-link-bound P2P traffic: it captures the effects the paper measures
(slow peers throttle exchanges; join floods saturate links) without
simulating packets.

Transfers to an offline peer fail: the sender's callback is invoked with
``ok=False`` after a timeout, modeling the failed-communication path by
which PlanetP discovers departures (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.metrics import BandwidthSeries

__all__ = ["Network", "TransferStats"]


@dataclass
class TransferStats:
    """Aggregate accounting for all transfers on a network."""

    total_bytes: int = 0
    total_messages: int = 0
    failed_messages: int = 0
    per_peer_bytes: dict[int, int] = field(default_factory=dict)

    def record(self, src: int, dst: int, nbytes: int) -> None:
        """Account one successful message."""
        self.total_bytes += nbytes
        self.total_messages += 1
        self.per_peer_bytes[src] = self.per_peer_bytes.get(src, 0) + nbytes
        self.per_peer_bytes[dst] = self.per_peer_bytes.get(dst, 0) + nbytes


class Network:
    """Bandwidth-constrained message delivery between peers.

    Parameters
    ----------
    sim:
        The event engine driving delivery callbacks.
    link_speeds:
        Per-peer access-link speed in bytes/second.
    latency_s:
        Fixed one-way propagation latency added to every message.
    failure_timeout_s:
        How long a sender waits before concluding the target is offline.
    bucket_s:
        Width of the aggregate-bandwidth time-series buckets.
    registry:
        Optional :class:`~repro.obs.Registry`; simulated traffic then
        mirrors into the same metric vocabulary the live stack uses.
    """

    __slots__ = (
        "sim",
        "link_speeds",
        "latency_s",
        "failure_timeout_s",
        "online",
        "stats",
        "bandwidth",
        "_link_free",
    )

    def __init__(
        self,
        sim: Simulator,
        link_speeds: np.ndarray,
        latency_s: float = 0.01,
        failure_timeout_s: float = 5.0,
        bucket_s: float = 10.0,
        registry=None,
    ) -> None:
        speeds = np.asarray(link_speeds, dtype=float)
        if speeds.ndim != 1 or speeds.size == 0:
            raise ValueError("link_speeds must be a non-empty 1-D array")
        if np.any(speeds <= 0):
            raise ValueError("link speeds must be positive")
        self.sim = sim
        self.link_speeds = speeds
        self.latency_s = latency_s
        self.failure_timeout_s = failure_timeout_s
        #: per-peer reachability; offline peers fail incoming transfers.
        self.online = np.ones(speeds.size, dtype=bool)
        self.stats = TransferStats()
        self.bandwidth = BandwidthSeries(bucket_s, registry=registry)
        self._link_free = np.zeros(speeds.size, dtype=float)

    @property
    def num_peers(self) -> int:
        """Number of attached peers."""
        return int(self.link_speeds.size)

    def set_online(self, peer_id: int, online: bool) -> None:
        """Attach/detach a peer from the network."""
        self.online[peer_id] = online
        if not online:
            # A departing peer's pending link reservations are released.
            self._link_free[peer_id] = self.sim.now

    def is_online(self, peer_id: int) -> bool:
        """Whether the peer is reachable."""
        return bool(self.online[peer_id])

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_delivered: Callable[[], None] | None = None,
        on_failed: Callable[[], None] | None = None,
    ) -> None:
        """Send ``nbytes`` from ``src`` to ``dst``.

        On success, ``on_delivered`` fires at the receiver when the
        transfer completes; on failure (offline target), ``on_failed``
        fires at the sender after the failure timeout.
        """
        if src == dst:
            raise ValueError("a peer cannot message itself")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not self.online[src]:
            # Sender going offline mid-exchange: the message silently dies.
            return
        if not self.online[dst]:
            self.stats.failed_messages += 1
            if on_failed is not None:
                self.sim.schedule(self.failure_timeout_s, on_failed)
            return
        now = self.sim.now
        start = max(now, self._link_free[src], self._link_free[dst])
        speed = min(self.link_speeds[src], self.link_speeds[dst])
        duration = nbytes / speed
        end = start + duration
        self._link_free[src] = end
        self._link_free[dst] = end
        self.stats.record(src, dst, nbytes)
        self.bandwidth.record(start, nbytes)
        deliver_at = end + self.latency_s

        def _deliver() -> None:
            # The target may have gone offline while the bytes were in
            # flight; the message is then lost and the sender times out.
            if self.online[dst]:
                if on_delivered is not None:
                    on_delivered()
            else:
                self.stats.failed_messages += 1
                if on_failed is not None:
                    self.sim.schedule(self.failure_timeout_s, on_failed)

        self.sim.schedule_at(deliver_at, _deliver)

    def link_utilization_until(self, peer_id: int) -> float:
        """Time at which the peer's link becomes free (diagnostics)."""
        return float(self._link_free[peer_id])
