"""Measurement plumbing: bandwidth time series and convergence tracking.

:class:`BandwidthSeries` feeds Figure 4(c) (aggregate gossiping bandwidth
over time); :class:`ConvergenceTracker` produces the per-event convergence
times behind Figures 2(a), 3, 4(a,b) and 5.

The simulator and the real network stack share one metrics vocabulary:
pass a :class:`~repro.obs.Registry` to :class:`BandwidthSeries` and every
recorded transfer is mirrored into the same ``sim_bytes_total`` /
``sim_transfers_total`` counters a live node's transport reports, so
simulated and measured bandwidth plot from identical instruments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # import-light: repro.obs is only needed when used
    from repro.obs import Registry

__all__ = ["BandwidthSeries", "ConvergenceTracker"]


class BandwidthSeries:
    """Bytes transferred per time bucket.

    ``registry`` (optional) mirrors each record into :mod:`repro.obs`
    counters under the given component, unifying sim and net metrics.
    """

    __slots__ = ("bucket_s", "_buckets", "_bytes_counter", "_transfers_counter")

    def __init__(
        self,
        bucket_s: float = 10.0,
        registry: "Registry | None" = None,
        component: str = "sim",
    ) -> None:
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        self.bucket_s = bucket_s
        self._buckets: dict[int, int] = {}
        self._bytes_counter = self._transfers_counter = None
        if registry is not None:
            self._bytes_counter = registry.counter(
                component, "bytes_total", "bytes moved by the simulated network"
            )
            self._transfers_counter = registry.counter(
                component, "transfers_total", "simulated message transfers"
            )

    def record(self, time: float, nbytes: int) -> None:
        """Attribute ``nbytes`` to the bucket containing ``time``."""
        if time < 0:
            raise ValueError("time must be non-negative")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        bucket = int(time / self.bucket_s)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + nbytes
        if self._bytes_counter is not None:
            self._bytes_counter.inc(nbytes)
            self._transfers_counter.inc()

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, bytes_per_second)`` arrays, one point per bucket.

        Empty buckets between the first and last are included as zeros so
        the series plots correctly.
        """
        if not self._buckets:
            return np.zeros(0), np.zeros(0)
        first = min(self._buckets)
        last = max(self._buckets)
        ids = np.arange(first, last + 1)
        times = ids * self.bucket_s
        rates = np.array(
            [self._buckets.get(int(i), 0) / self.bucket_s for i in ids], dtype=float
        )
        return times, rates

    def total_bytes(self) -> int:
        """Sum over all buckets."""
        return sum(self._buckets.values())

    def peak_rate(self) -> float:
        """Maximum bytes/second over buckets (0 when empty)."""
        if not self._buckets:
            return 0.0
        return max(self._buckets.values()) / self.bucket_s


@dataclass
class _TrackedEvent:
    """Bookkeeping for one rumor/event being tracked to convergence."""

    created_at: float
    unknown: set[int]
    converged_at: float | None = None
    label: str = ""


class ConvergenceTracker:
    """Tracks when each event becomes known to every required peer.

    An event (a join, rejoin, or Bloom filter update — i.e. a rumor) is
    *converged* the first time every peer in its required set knows it.
    The required set shrinks when peers learn the event or go offline and
    grows when an unknowing required peer comes online before convergence.
    A ``required`` predicate restricts tracking to a peer class (used for
    the MIX-F / MIX-S convergence conditions of Figure 5).
    """

    def __init__(self, required: Callable[[int], bool] | None = None) -> None:
        self._events: dict[int, _TrackedEvent] = {}
        self._required = required or (lambda pid: True)
        self._unconverged_count = 0

    def register(
        self, event_id: int, created_at: float, online_unknowing: set[int], label: str = ""
    ) -> None:
        """Begin tracking ``event_id``.

        ``online_unknowing`` is the set of peers online at creation time
        that do not yet know the event (typically everyone but the origin).
        """
        if event_id in self._events:
            raise ValueError(f"event {event_id} already tracked")
        unknown = {p for p in online_unknowing if self._required(p)}
        ev = _TrackedEvent(created_at, unknown, label=label)
        self._events[event_id] = ev
        if unknown:
            self._unconverged_count += 1
        else:
            ev.converged_at = created_at

    def peer_learned(self, event_id: int, peer_id: int, time: float) -> None:
        """Record that ``peer_id`` now knows ``event_id``."""
        ev = self._events.get(event_id)
        if ev is None or ev.converged_at is not None:
            return
        ev.unknown.discard(peer_id)
        if not ev.unknown:
            ev.converged_at = time
            self._unconverged_count -= 1

    def peer_offline(self, peer_id: int, time: float) -> None:
        """An offline peer no longer blocks convergence."""
        for ev in self._events.values():
            if ev.converged_at is None:
                ev.unknown.discard(peer_id)
                if not ev.unknown:
                    ev.converged_at = time
                    self._unconverged_count -= 1

    def peer_online(self, peer_id: int, knows: Callable[[int], bool]) -> None:
        """A returning peer re-blocks unconverged events it doesn't know.

        ``knows(event_id)`` reports whether the peer already knows an event.
        """
        if not self._required(peer_id):
            return
        for event_id, ev in self._events.items():
            if ev.converged_at is None and not knows(event_id):
                ev.unknown.add(peer_id)

    def peer_learned_many(
        self, peer_id: int, known_ids: set[int], time: float
    ) -> None:
        """Bulk form of :meth:`peer_learned` for directory snapshots."""
        for event_id in self._events.keys() & known_ids:
            self.peer_learned(event_id, peer_id, time)

    # -- results ---------------------------------------------------------------

    def convergence_times(self) -> dict[int, float]:
        """event_id -> (converged_at - created_at) for converged events."""
        return {
            eid: ev.converged_at - ev.created_at
            for eid, ev in self._events.items()
            if ev.converged_at is not None
        }

    def unconverged(self) -> list[int]:
        """Ids of events that never converged."""
        return [eid for eid, ev in self._events.items() if ev.converged_at is None]

    def all_converged(self) -> bool:
        """Whether every tracked event has converged (O(1))."""
        return self._unconverged_count == 0

    def labels(self) -> dict[int, str]:
        """event_id -> label map."""
        return {eid: ev.label for eid, ev in self._events.items()}

    def __len__(self) -> int:
        return len(self._events)
