"""Community link-speed topologies (paper Section 7.2).

* **LAN** — every peer on a 45 Mbps link.
* **DSL** — every peer on a 512 Kbps link (the DSL-10/30/60 scenarios vary
  the gossip interval, not the links).
* **MIX** — the Gnutella/Napster mixture measured by Saroiu et al.:
  9% 56 kbps, 21% 512 kbps, 50% 5 Mbps, 16% 10 Mbps, 4% 45 Mbps.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    LINK_DSL,
    LINK_LAN,
    LINK_MODEM,
    MIX_DISTRIBUTION,
)
from repro.utils.rng import make_rng

__all__ = ["lan_topology", "dsl_topology", "mix_topology", "modem_topology", "make_topology", "TOPOLOGIES"]


def lan_topology(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """All peers on 45 Mbps links."""
    _check(n)
    return np.full(n, LINK_LAN, dtype=float)


def dsl_topology(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """All peers on 512 Kbps links."""
    _check(n)
    return np.full(n, LINK_DSL, dtype=float)


def modem_topology(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """All peers on 56 kbps links (worst case discussed in Section 7.2)."""
    _check(n)
    return np.full(n, LINK_MODEM, dtype=float)


def mix_topology(n: int, rng: np.random.Generator | None = None) -> np.ndarray:
    """The Saroiu et al. mixture.

    Class counts are deterministic (largest-remainder rounding of the
    published fractions); which peers land in which class is shuffled by
    ``rng`` so peer id and link class are uncorrelated.
    """
    _check(n)
    gen = make_rng(rng)
    fractions = np.array([f for f, _ in MIX_DISTRIBUTION])
    speeds_per_class = np.array([s for _, s in MIX_DISTRIBUTION])
    ideal = fractions * n
    counts = np.floor(ideal).astype(int)
    remainder = n - counts.sum()
    # Assign leftover peers to the classes with the largest fractional parts.
    order = np.argsort(ideal - counts)[::-1]
    for i in range(remainder):
        counts[order[i % len(counts)]] += 1
    speeds = np.repeat(speeds_per_class, counts)
    gen.shuffle(speeds)
    return speeds


TOPOLOGIES = {
    "lan": lan_topology,
    "dsl": dsl_topology,
    "mix": mix_topology,
    "modem": modem_topology,
}


def make_topology(
    name: str, n: int, rng: np.random.Generator | None = None
) -> np.ndarray:
    """Build topology ``name`` ('lan' | 'dsl' | 'mix' | 'modem')."""
    try:
        builder = TOPOLOGIES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown topology {name!r}; choose from {sorted(TOPOLOGIES)}") from None
    return builder(n, rng)


def _check(n: int) -> None:
    if n <= 0:
        raise ValueError("community size must be positive")
