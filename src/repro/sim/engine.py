"""The discrete-event engine.

A classic heapq calendar queue.  Events fire in (time, sequence) order, so
simultaneous events run in scheduling order and every run with the same
seed is bit-for-bit reproducible.  The hot path (schedule/pop) is kept
allocation-light — one tuple per event — because gossip simulations at
N=5000 push millions of events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Simulator", "Event"]


@dataclass(frozen=True)
class Event:
    """Handle returned by :meth:`Simulator.schedule`; cancellable."""

    time: float
    seq: int

    def __lt__(self, other: "Event") -> bool:  # pragma: no cover - trivial
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Single-threaded discrete-event simulator."""

    __slots__ = ("_now", "_queue", "_seq", "_cancelled", "_events_run")

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        """Total events executed so far."""
        return self._events_run

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        seq = next(self._seq)
        heapq.heappush(self._queue, (self._now + delay, seq, callback, args))
        return Event(self._now + delay, seq)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Run ``callback(*args)`` at absolute simulation time ``time``."""
        return self.schedule(time - self._now, callback, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazy deletion)."""
        self._cancelled.add(event.seq)

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> float:
        """Drain the event queue.

        Stops when the queue empties, simulation time would exceed
        ``until``, ``max_events`` have run, or ``stop_when()`` returns
        true (checked after each event).  Returns the final time.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            time, seq, callback, args = self._queue[0]
            if until is not None and time > until:
                self._now = until
                break
            heapq.heappop(self._queue)
            if seq in self._cancelled:
                self._cancelled.discard(seq)
                continue
            self._now = time
            callback(*args)
            executed += 1
            self._events_run += 1
            if stop_when is not None and stop_when():
                break
        else:
            if until is not None:
                self._now = max(self._now, until)
        return self._now

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Simulator(now={self._now:.3f}, pending={len(self._queue)})"
