"""Peer churn: online/offline behaviour over time.

Figure 4(b)'s dynamic community: 40% of members are online all the time;
60% alternate between online periods averaging 60 minutes and offline
periods averaging 140 minutes, both exponentially distributed ("generated
using a Poisson process"); 5% of rejoins carry 1000 new keys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import make_rng

__all__ = ["OnOffSchedule", "ChurnModel"]


@dataclass(frozen=True)
class OnOffSchedule:
    """One peer's alternating schedule.

    ``transitions`` holds the times at which the peer flips state, starting
    from ``initially_online``; it is strictly increasing.
    """

    peer_id: int
    initially_online: bool
    transitions: tuple[float, ...]

    def state_at(self, time: float) -> bool:
        """Online state at ``time``."""
        flips = sum(1 for t in self.transitions if t <= time)
        return self.initially_online ^ (flips % 2 == 1)


class ChurnModel:
    """Generates per-peer on/off schedules for a dynamic community.

    Parameters
    ----------
    num_peers:
        Community size.
    always_on_fraction:
        Fraction of peers that never go offline (paper: 0.40).
    mean_online_s, mean_offline_s:
        Exponential means for churning peers (paper: 3600 s / 8400 s).
    new_keys_prob:
        Probability a rejoin carries new keys (paper: 0.05).
    """

    def __init__(
        self,
        num_peers: int,
        always_on_fraction: float = 0.40,
        mean_online_s: float = 3600.0,
        mean_offline_s: float = 8400.0,
        new_keys_prob: float = 0.05,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if num_peers <= 0:
            raise ValueError("num_peers must be positive")
        if not 0.0 <= always_on_fraction <= 1.0:
            raise ValueError("always_on_fraction must be in [0, 1]")
        if mean_online_s <= 0 or mean_offline_s <= 0:
            raise ValueError("mean durations must be positive")
        if not 0.0 <= new_keys_prob <= 1.0:
            raise ValueError("new_keys_prob must be a probability")
        self.num_peers = num_peers
        self.always_on_fraction = always_on_fraction
        self.mean_online_s = mean_online_s
        self.mean_offline_s = mean_offline_s
        self.new_keys_prob = new_keys_prob
        self._rng = make_rng(seed)

    def always_on_count(self) -> int:
        """Number of peers that never churn (the first ids by convention)."""
        return int(round(self.num_peers * self.always_on_fraction))

    def generate(self, horizon_s: float) -> list[OnOffSchedule]:
        """Schedules for every peer over ``[0, horizon_s]``.

        Churning peers start in a state drawn from the stationary
        distribution of the on/off process (online with probability
        mean_on / (mean_on + mean_off)) so the community is in steady
        state from t=0 rather than synchronized.
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        schedules: list[OnOffSchedule] = []
        n_always = self.always_on_count()
        p_online = self.mean_online_s / (self.mean_online_s + self.mean_offline_s)
        for pid in range(self.num_peers):
            if pid < n_always:
                schedules.append(OnOffSchedule(pid, True, ()))
                continue
            online = bool(self._rng.random() < p_online)
            transitions: list[float] = []
            t = 0.0
            state = online
            while True:
                mean = self.mean_online_s if state else self.mean_offline_s
                t += float(self._rng.exponential(mean))
                if t >= horizon_s:
                    break
                transitions.append(t)
                state = not state
            schedules.append(OnOffSchedule(pid, online, tuple(transitions)))
        return schedules

    def rejoin_has_new_keys(self) -> bool:
        """Sample whether a rejoin event carries 1000 new keys."""
        return bool(self._rng.random() < self.new_keys_prob)
