"""Validating the gossip simulator against the real library state.

The authors validated their simulator by running the Java prototype on an
8-machine cluster (Section 7.2).  We have no cluster, but we can do the
equivalent in-process: run *real* PlanetP state — actual Bloom filters,
actual Golomb-compressed diffs — through the simulated gossip layer and
check that

1. the Table 2 wire-size model matches what our real compression produces
   for the same key counts, and
2. after gossip convergence every peer's *replicated* filter equals the
   publisher's true filter, so a TF×IPF search over gossiped replicas is
   identical to one over direct filter access.

:class:`ReplicaObserver` plugs into :class:`GossipSimulation`'s tracker
broadcast: whenever a peer learns a rumor carrying a filter diff, the
observer applies that diff to the peer's local replica — the simulation's
rumor ids become real state transfer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bloom.compress import compressed_size
from repro.bloom.diff import BloomDiff, apply_diff, diff_filters
from repro.bloom.filter import BloomFilter
from repro.constants import GossipConfig, WireSizes
from repro.gossip.simulation import GossipSimulation
from repro.sim.metrics import ConvergenceTracker
from repro.sim.topology import make_topology
from repro.utils.rng import make_rng

__all__ = ["ReplicaObserver", "wire_model_vs_real", "run_live_replication"]


class ReplicaObserver:
    """Tracker-protocol observer that applies real filter diffs on learn.

    ``replicas[peer][origin]`` is peer's copy of origin's Bloom filter,
    updated as the corresponding rumors reach it.
    """

    def __init__(self, num_peers: int, template: BloomFilter) -> None:
        self.replicas: list[dict[int, BloomFilter]] = [
            {} for _ in range(num_peers)
        ]
        self._template = template
        self._diffs: dict[int, tuple[int, BloomDiff]] = {}

    def attach_diff(self, rid: int, origin: int, diff: BloomDiff) -> None:
        """Associate rumor ``rid`` with a real filter diff from ``origin``."""
        self._diffs[rid] = (origin, diff)

    def _apply(self, rid: int, peer_id: int) -> None:
        entry = self._diffs.get(rid)
        if entry is None:
            return
        origin, diff = entry
        replica = self.replicas[peer_id].get(origin)
        if replica is None:
            replica = BloomFilter(self._template.num_bits, self._template.num_hashes)
        self.replicas[peer_id][origin] = apply_diff(replica, diff)

    # -- ConvergenceTracker-compatible interface -------------------------------

    def register(self, event_id: int, created_at: float, online_unknowing, label="") -> None:
        """No-op: registration is handled via :meth:`attach_diff`."""

    def peer_learned(self, event_id: int, peer_id: int, time: float) -> None:
        """Apply the rumor's diff to the learner's replica."""
        self._apply(event_id, peer_id)

    def peer_learned_many(self, peer_id: int, known_ids: set[int], time: float) -> None:
        """Bulk form used by directory snapshots."""
        for rid in known_ids:
            self._apply(rid, peer_id)

    def peer_offline(self, peer_id: int, time: float) -> None:
        """No-op (replicas persist across offline periods)."""

    def peer_online(self, peer_id: int, knows) -> None:
        """No-op."""


@dataclass(frozen=True)
class WireModelRow:
    """One key-count comparison between Table 2's model and reality."""

    num_keys: int
    model_bytes: int
    real_bytes: int

    @property
    def ratio(self) -> float:
        """real / model."""
        return self.real_bytes / self.model_bytes


def wire_model_vs_real(
    key_counts: tuple[int, ...] = (1000, 5000, 10000, 20000),
    num_hashes: int = 2,
) -> list[WireModelRow]:
    """Compare Table 2's interpolated Bloom filter wire sizes against the
    actual Golomb-compressed sizes our implementation produces."""
    wire = WireSizes()
    rows = []
    for n in key_counts:
        bf = BloomFilter.paper_prototype()
        bf.add_many([f"validation-key-{i}" for i in range(n)])
        rows.append(
            WireModelRow(
                num_keys=n,
                model_bytes=wire.bloom_filter_bytes(n),
                real_bytes=compressed_size(bf),
            )
        )
    return rows


@dataclass
class LiveReplicationResult:
    """Outcome of a real-state gossip replication run."""

    converged: bool
    convergence_time_s: float
    replicas_exact: bool
    total_bytes: int
    num_publishers: int


def run_live_replication(
    n_peers: int = 20,
    n_publishers: int = 4,
    terms_per_publisher: int = 300,
    topology: str = "lan",
    config: GossipConfig | None = None,
    seed: int = 0,
    max_time_s: float = 4 * 3600.0,
) -> LiveReplicationResult:
    """Gossip *real* Bloom filter diffs through the simulator.

    ``n_publishers`` peers each build a real filter over fresh terms; the
    corresponding rumors carry the diffs' true Golomb-compressed sizes
    and, on learning, receivers apply the actual diff to their replica.
    Returns whether every online peer's replica ended up bit-identical to
    each publisher's true filter.
    """
    cfg = config or GossipConfig(base_interval_s=2.0, max_interval_s=4.0)
    rng = make_rng(seed)
    world = GossipSimulation(make_topology(topology, n_peers, rng), cfg, seed=rng)
    tracker = ConvergenceTracker()
    template = BloomFilter(2**16, 2)
    observer = ReplicaObserver(n_peers, template)
    world.trackers.append(tracker)
    world.trackers.append(observer)
    world.establish(range(n_peers))

    true_filters: dict[int, BloomFilter] = {}
    for p in range(n_publishers):
        old = BloomFilter(template.num_bits, template.num_hashes)
        new = old.copy()
        new.add_many([f"peer{p}-term-{i}" for i in range(terms_per_publisher)])
        diff = diff_filters(old, new)
        true_filters[p] = new
        # The rumor's payload is the diff's true wire size, not Table 2's
        # interpolation — the simulation carries real costs.
        rumor = world.peers[p].originate_update(
            terms_per_publisher, payload_bytes=diff.wire_size()
        )
        world.tracked_register(rumor.rid, p, label="bf_diff")
        observer.attach_diff(rumor.rid, p, diff)
        observer.peer_learned(rumor.rid, p, 0.0)

    world.sim.run(until=max_time_s, stop_when=tracker.all_converged)
    converged = tracker.all_converged()
    times = tracker.convergence_times()
    elapsed = max(times.values(), default=world.sim.now)

    exact = True
    for peer_id in range(n_peers):
        for origin, truth in true_filters.items():
            if peer_id == origin:
                continue
            replica = observer.replicas[peer_id].get(origin)
            if replica is None or replica != truth:
                exact = False
    return LiveReplicationResult(
        converged=converged,
        convergence_time_s=elapsed,
        replicas_exact=exact and converged,
        total_bytes=world.network.stats.total_bytes,
        num_publishers=n_publishers,
    )
