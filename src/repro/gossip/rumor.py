"""Rumors: the unit of gossiped information.

Every directory-changing event (a new member joining, a previously
off-line member rejoining, a Bloom filter update) becomes a rumor with a
community-unique id and a wire payload size.  The gossip simulator, like
the paper's, tracks *which* rumors each peer knows rather than the bytes
themselves; payload sizes follow the Table 2 wire-size model.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

__all__ = ["RumorKind", "Rumor", "RumorRegistry"]


class RumorKind(enum.Enum):
    """What a rumor announces."""

    JOIN = "join"  # a brand-new member (carries its Bloom filter)
    REJOIN = "rejoin"  # a member came back online
    BF_UPDATE = "bf_update"  # a member's Bloom filter grew (diff)


@dataclass(frozen=True)
class Rumor:
    """One gossiped event.

    Attributes
    ----------
    rid:
        Community-unique rumor id.
    kind:
        Event type (affects how receivers update their directory).
    origin:
        The peer the rumor is about.
    payload_bytes:
        Wire size of the rumor's data (Bloom filter diff, peer record...).
    created_at:
        Simulation time of the event.
    """

    rid: int
    kind: RumorKind
    origin: int
    payload_bytes: int
    created_at: float

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        if self.origin < 0:
            raise ValueError("origin must be a valid peer id")


class RumorRegistry:
    """Community-wide id allocation and rumor lookup.

    Shared by all simulated peers; peers refer to rumors by id only, so the
    registry is the single copy of each rumor's metadata.
    """

    def __init__(self) -> None:
        self._rumors: dict[int, Rumor] = {}
        self._ids = itertools.count()

    def create(
        self, kind: RumorKind, origin: int, payload_bytes: int, created_at: float
    ) -> Rumor:
        """Mint a new rumor with a fresh id."""
        rumor = Rumor(next(self._ids), kind, origin, payload_bytes, created_at)
        self._rumors[rumor.rid] = rumor
        return rumor

    def get(self, rid: int) -> Rumor:
        """Look up a rumor by id."""
        return self._rumors[rid]

    def payload_total(self, rids: list[int]) -> int:
        """Summed payload size of the given rumor ids."""
        return sum(self._rumors[r].payload_bytes for r in rids)

    def __len__(self) -> int:
        return len(self._rumors)

    def __contains__(self, rid: int) -> bool:
        return rid in self._rumors
