"""Partial-view membership: a sharded directory for very large communities.

The flat protocol replicates every member's Bloom filter everywhere —
O(N) filters and O(N) gossip state per node, which caps realistic
communities at a few thousand peers (the paper's own evaluation stops at
~1000).  Under the partial-view mode a node keeps *full* filters only
for:

* the members of its own **directory shard** — a consistent-hash of pids
  onto a small fixed set of shards (reusing the brokerage ring, with
  virtual points so arcs stay balanced), and
* a bounded **random sample** of out-of-shard peers, so ranked search
  has warm candidates beyond its home shard.

Every other member's filter is folded into one coarse **shard summary**
per foreign shard: the bitwise OR of that shard's member filters.  A
summary can never miss a term one of its members holds (Bloom unions
are false-negative-free), so query fan-out via summaries preserves the
directory's over-approximation guarantee — at the cost of having to ask
a member of the shard which *specific* peers hit.

Membership records (pid, address, online, filter_version) stay fully
replicated — they are ~30 bytes against a filter's kilobytes, and the
serve cache's directory generation still needs every member's version
tuple to invalidate on remote publishes.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator

import numpy as np

from repro.bloom.diff import BloomDiff
from repro.bloom.filter import BloomFilter
from repro.bloom.hashing import fnv1a_64
from repro.bloom.matcher import ShardedFilterMatrix
from repro.brokerage.ring import ConsistentHashRing
from repro.constants import BloomConfig, PartialViewConfig
from repro.gossip.directory import mix_rumor_ids

__all__ = ["ShardMap", "ShardSummary", "PartialView"]

#: Bounds on the per-summary diff history.  Past either bound the history
#: is dropped and refresh replies fall back to full blooms — diffs are a
#: bandwidth optimisation, never required for correctness.
_MAX_DIFF_EVENTS = 16
_MAX_DIFF_POSITIONS = 4096


class ShardMap:
    """Consistent-hash pids → shards, stable under *peer* churn.

    Shards (not peers) sit on the ring, each at ``points_per_shard``
    virtual positions; a pid maps to the shard owning its hash's
    successor position.  Because the ring's occupants are the fixed
    shard set, peers joining or leaving never remaps anyone — only
    adding/removing a *shard* moves assignments, and then only the
    ~1/num_shards of pids in the affected arcs.
    """

    def __init__(self, num_shards: int, points_per_shard: int = 64) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if points_per_shard < 1:
            raise ValueError("points_per_shard must be >= 1")
        self.points_per_shard = points_per_shard
        self.ring = ConsistentHashRing()
        self._shards: set[int] = set()
        self._cache: dict[int, int] = {}
        for shard in range(num_shards):
            self.add_shard(shard)

    @property
    def shards(self) -> list[int]:
        """The current shard ids, sorted."""
        return sorted(self._shards)

    def add_shard(self, shard: int) -> None:
        """Place a shard's virtual points on the ring."""
        if shard in self._shards:
            raise ValueError(f"shard {shard} already on the ring")
        for point in range(self.points_per_shard):
            pos = fnv1a_64(f"shard:{shard}:{point}".encode(), seed=13) % self.ring.max_id
            while True:  # linear-probe the (astronomically rare) collision
                try:
                    self.ring.add_broker(shard, pos)
                    break
                except ValueError:
                    pos = (pos + 1) % self.ring.max_id
        self._shards.add(shard)
        self._cache.clear()

    def remove_shard(self, shard: int) -> None:
        """Remove a shard; its arcs fall to the successor shards."""
        if shard not in self._shards:
            raise KeyError(shard)
        self.ring.remove_broker(shard)
        self._shards.discard(shard)
        self._cache.clear()

    def shard_of(self, pid: int) -> int:
        """The shard responsible for ``pid`` (memoized)."""
        shard = self._cache.get(pid)
        if shard is None:
            shard = self.ring.broker_for(f"pid:{pid}")
            self._cache[pid] = shard
        return shard

    def assignments(self, pids: Iterable[int]) -> dict[int, int]:
        """``{pid: shard}`` over ``pids``."""
        return {pid: self.shard_of(pid) for pid in pids}


class ShardSummary:
    """The coarse OR of one shard's member filters.

    Monotone like every other piece of gossip state: bits are only ever
    OR-ed in, so merging summaries from different peers in any order
    converges.  ``version`` counts local folds and adopts the larger
    value on install, giving remote consumers a cheap freshness signal;
    ``member_count`` is the folding node's census of the shard.

    ``token`` is a content-addressed fingerprint of the summary's bit
    set: the XOR of a splitmix64 scramble of every set position.  Two
    summaries with identical bits carry identical tokens regardless of
    the fold order that produced them — unlike ``version``, which counts
    local folds and so differs across nodes holding the same bits.
    Refresh requesters advertise their tokens; a responder whose summary
    extends that bit set answers with just the added positions
    (:meth:`diff_since`), falling back to the full bloom when the token
    is not in its bounded history.
    """

    __slots__ = ("shard", "bloom", "member_count", "version", "token", "_history")

    def __init__(self, shard: int, num_bits: int, num_hashes: int) -> None:
        self.shard = shard
        self.bloom = BloomFilter(num_bits, num_hashes)
        self.member_count = 0
        self.version = 0
        self.token = 0
        #: newest-last ``(pre_token, added_positions)`` events.
        self._history: list[tuple[int, np.ndarray]] = []

    def _absorb(self, added: np.ndarray) -> None:
        """Record newly-set positions: advance the token, log the event."""
        if added.size == 0:
            return
        pre = self.token
        self.token ^= int(np.bitwise_xor.reduce(mix_rumor_ids(added)))
        self._history.append((pre, added))
        if (
            len(self._history) > _MAX_DIFF_EVENTS
            or sum(len(a) for _, a in self._history) > _MAX_DIFF_POSITIONS
        ):
            self._history.clear()

    def fold_filter(self, bf: BloomFilter) -> None:
        """OR a member's full filter into the summary."""
        if bf.hashes != self.bloom.hashes:
            return  # foreign geometry: nothing sound to fold
        added_words = bf.bits.difference_words(self.bloom.bits)
        bits = np.unpackbits(added_words.view(np.uint8), bitorder="little")
        added = np.nonzero(bits[: self.bloom.num_bits])[0].astype(np.int64)
        self.bloom.union_inplace(bf)
        self.version += 1
        self._absorb(added)

    def fold_diff(self, diff: BloomDiff) -> None:
        """OR a member's gossiped filter diff into the summary."""
        if diff.num_bits != self.bloom.num_bits:
            return
        if diff.positions.size:
            hits = self.bloom.bits.get_many(diff.positions)
            added = diff.positions[~hits]
        else:
            added = diff.positions
        self.bloom.set_positions(diff.positions)
        self.version += 1
        self._absorb(added)

    def install(self, bloom: BloomFilter, member_count: int, version: int) -> None:
        """Adopt a remote summary: union the bits (monotone), take the
        newer census."""
        self.fold_filter(bloom)
        if version >= self.version:
            self.version = version
        if member_count > 0:
            self.member_count = member_count

    def install_diff(
        self, diff: BloomDiff, member_count: int, version: int
    ) -> None:
        """Adopt a remote summary served as a positions diff."""
        self.fold_diff(diff)
        if version >= self.version:
            self.version = version
        if member_count > 0:
            self.member_count = member_count

    def diff_since(self, token: int) -> np.ndarray | None:
        """Positions added since the summary carried ``token``.

        Returns an empty array when ``token`` is current (nothing to
        send), the accumulated added positions when ``token`` appears in
        the bounded history, and ``None`` when it does not — the caller
        must then fall back to the full bloom.  Served diffs are OR-ed
        in by the requester, so a stale or colliding token can only
        delay convergence toward the full-bloom path, never corrupt the
        monotone summary.
        """
        if token == self.token:
            return np.zeros(0, dtype=np.int64)
        chunks: list[np.ndarray] = []
        for pre, added in reversed(self._history):
            chunks.append(added)
            if pre == token:
                return np.unique(np.concatenate(chunks))
        return None


class PartialView:
    """One node's sharded knowledge of the community.

    Tracks which pids the node keeps full filters for (home shard plus
    the bounded sample), owns the per-foreign-shard summaries, and
    maintains the :class:`~repro.bloom.matcher.ShardedFilterMatrix` that
    ranked search fans out over.
    """

    def __init__(
        self,
        owner: int,
        config: PartialViewConfig | None = None,
        bloom: BloomConfig | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.owner = owner
        self.config = config or PartialViewConfig()
        self.bloom_config = bloom or BloomConfig()
        self.shard_map = ShardMap(self.config.num_shards, self.config.points_per_shard)
        self.home = self.shard_map.shard_of(owner)
        #: out-of-shard pids whose full filters we keep anyway.
        self.sample: set[int] = set()
        self.summaries: dict[int, ShardSummary] = {}
        self.matrix = ShardedFilterMatrix()
        self._rng = rng if rng is not None else random.Random(owner)

    # -- membership classification ----------------------------------------

    def shard_of(self, pid: int) -> int:
        """The shard responsible for ``pid``."""
        return self.shard_map.shard_of(pid)

    def keeps_filter(self, pid: int) -> bool:
        """Whether this node stores ``pid``'s full filter."""
        return (
            pid == self.owner
            or self.shard_map.shard_of(pid) == self.home
            or pid in self.sample
        )

    def maybe_admit(self, pid: int) -> bool:
        """Admit an out-of-shard pid to the sample if there is room.

        Returns whether the pid's full filter should be kept.
        """
        if self.keeps_filter(pid):
            return True
        if len(self.sample) < self.config.sample_size:
            self.sample.add(pid)
            return True
        return False

    def forget(self, pid: int) -> None:
        """Drop a pid from the sample and the matrix (directory expiry)."""
        self.sample.discard(pid)
        self.matrix.remove(pid)

    # -- summary maintenance -----------------------------------------------

    def summary_for(self, shard: int) -> ShardSummary:
        """The summary for ``shard``, created empty on first touch."""
        summary = self.summaries.get(shard)
        if summary is None:
            summary = ShardSummary(
                shard, self.bloom_config.num_bits, self.bloom_config.num_hashes
            )
            self.summaries[shard] = summary
        return summary

    def fold_filter(self, pid: int, bf: BloomFilter) -> None:
        """Account a foreign member's full filter in its shard summary.

        Home-shard members are excluded: their full filters are already
        first-class rows, and the home summary is recomputed fresh when
        served (see the node's shard-summary handler).
        """
        shard = self.shard_map.shard_of(pid)
        if shard == self.home:
            return
        self.summary_for(shard).fold_filter(bf)

    def fold_diff(self, pid: int, diff: BloomDiff) -> None:
        """Account a foreign member's gossiped diff in its shard summary."""
        shard = self.shard_map.shard_of(pid)
        if shard == self.home:
            return
        self.summary_for(shard).fold_diff(diff)

    # -- the search-side matrix --------------------------------------------

    def sync(self, filters: Iterable[tuple[int, BloomFilter]]) -> None:
        """Reconcile the sharded matrix: one full row per held filter
        (grouped by shard) plus one summary row per foreign shard."""
        self.matrix.sync(
            (self.shard_map.shard_of(pid), pid, bf) for pid, bf in filters
        )
        for shard, summary in self.summaries.items():
            if shard != self.home:
                self.matrix.set_summary(shard, summary.bloom)

    # -- accounting ---------------------------------------------------------

    def held_filter_pids(self, directory: Iterable[int]) -> Iterator[int]:
        """Of ``directory``'s pids, the ones whose filters we keep."""
        return (pid for pid in directory if self.keeps_filter(pid))

    def unknown_shards(self) -> list[int]:
        """Foreign shards with no summary yet.

        Query fan-out must include these unconditionally: a missing
        summary is an absence of evidence, not evidence that the shard
        holds nothing — skipping it would break the directory's
        over-approximation guarantee during warm-up.
        """
        return [
            shard
            for shard in self.shard_map.shards
            if shard != self.home and shard not in self.summaries
        ]

    def summary_bytes(self) -> int:
        """Raw bytes pinned by the per-shard summary filters."""
        return sum(s.bloom.num_bits // 8 for s in self.summaries.values())
