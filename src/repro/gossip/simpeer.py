"""The simulated gossiping peer: PlanetP's full Section 3 protocol.

Each peer runs an independent gossip timer.  A round is either:

* a **rumor round** (push): announce the ids of all actively-spread rumors
  to a random target; the target replies with which it needs (plus the
  partial-anti-entropy piggyback of recently retired rumor ids); the
  sender ships the needed payloads.  Per-rumor counters stop a rumor's
  spread after ``rumor_give_up_count`` consecutive targets already knew it
  (Demers et al.'s counter variant).

* an **anti-entropy round** (pull): every ``anti_entropy_period``-th round,
  or whenever there is nothing to rumor.  The initiator sends its
  directory digest; on mismatch the target first returns the ids of its
  recently learned rumors (cheap — "message sizes are mostly proportional
  to the number of changes being propagated"), and only if the initiator
  is still inconsistent after pulling those does it request the full
  directory summary, whose size is proportional to community size (the
  cost the paper calls out for AE-only gossiping).

The AE-only baseline (``config.anti_entropy_only``, the paper's LAN-AE
curve) replaces every round with a *push* anti-entropy: the initiator
ships its full summary unconditionally and the target pulls what it lacks.

Information learned through any pull (partial or full anti-entropy) is
*not* re-spread as a rumor; information learned through a rumor push is.

Implementation notes
--------------------
* Message contents are byte counts (:class:`MessageSizer`); rumor identity
  travels as Python-level ids.
* Per-message CPU cost (Table 2's 5 ms) is folded into the network's
  fixed latency by the simulation builder.
* Summaries/known-sets are read at delivery time rather than deep-copied
  at send time; state grows monotonically during an exchange so this only
  errs toward including a few extra ids, and it keeps N=5000 runs cheap.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.constants import GossipConfig, WireSizes
from repro.gossip.directory import DirectoryView
from repro.gossip.intervals import IntervalPolicy
from repro.gossip.messages import MessageSizer
from repro.gossip.rumor import Rumor, RumorKind, RumorRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.gossip.simulation import GossipSimulation

__all__ = ["GossipPeer"]


class GossipPeer:
    """One community member in the gossip simulation."""

    __slots__ = (
        "pid",
        "world",
        "config",
        "sizer",
        "rng",
        "directory",
        "hot",
        "recent",
        "recent_learned",
        "intervals",
        "round_counter",
        "online",
        "keys_shared",
        "_timer",
        "_timer_time",
    )

    def __init__(
        self,
        pid: int,
        world: "GossipSimulation",
        rng: np.random.Generator,
        keys_shared: int = 0,
    ) -> None:
        self.pid = pid
        self.world = world
        self.config: GossipConfig = world.config
        self.sizer: MessageSizer = world.sizer
        self.rng = rng
        self.directory = DirectoryView(pid, world.num_slots)
        #: actively-spread rumors: rid -> consecutive already-knew count.
        self.hot: dict[int, int] = {}
        #: recently retired rumor ids for the partial-AE piggyback.
        self.recent: deque[int] = deque(maxlen=self.config.partial_ae_recent)
        #: recently learned rumor ids, offered as anti-entropy's first
        #: (cheap) reconciliation level.
        self.recent_learned: deque[int] = deque(maxlen=self.config.ae_recent_window)
        self.intervals = IntervalPolicy(self.config)
        self.round_counter = 0
        self.online = False
        self.keys_shared = keys_shared
        self._timer = None
        self._timer_time = float("inf")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, initial_delay: float | None = None, stable: bool = False) -> None:
        """Bring the peer online and start its gossip timer.

        ``stable`` starts the interval at the maximum (an established,
        quiescent community); the first round fires after ``initial_delay``
        (default: uniform within one interval, de-synchronizing peers).
        """
        self.online = True
        self.world.network.set_online(self.pid, True)
        if stable:
            self.intervals.interval = self.config.max_interval_s
        if initial_delay is None:
            initial_delay = float(self.rng.uniform(0.0, self.intervals.interval))
        self._schedule_timer(initial_delay)

    def go_offline(self) -> None:
        """Abrupt departure: stop gossiping, become unreachable."""
        self.online = False
        self.world.network.set_online(self.pid, False)
        self._cancel_timer()
        self.world.notify_offline(self.pid)

    def rejoin(self, new_keys: int = 0) -> Rumor:
        """Come back online, announcing a rejoin rumor.

        ``new_keys`` > 0 adds a Bloom-filter diff of that many keys to the
        rumor payload (the dynamic-scenario "Join" events).  Returns the
        minted rumor so the caller can register it for tracking.
        """
        payload = self.config.peer_summary_bytes
        if new_keys > 0:
            payload += self.world.wire.bloom_filter_bytes(new_keys)
        rumor = self.world.registry.create(
            RumorKind.REJOIN, self.pid, payload, self.world.sim.now
        )
        self.online = True
        self.world.network.set_online(self.pid, True)
        self.directory.learn(rumor.rid)
        self.recent_learned.append(rumor.rid)
        self.directory.mark_online(self.pid)
        self.hot[rumor.rid] = 0
        self.intervals.reset()
        # Force the first round after a rejoin to be an anti-entropy round:
        # the returning peer catches up on everything it missed while away
        # before resuming normal rumoring.
        self.round_counter = -1
        self._schedule_timer(float(self.rng.uniform(0.0, 2.0)))
        self.world.notify_online(self.pid)
        return rumor

    def originate_update(
        self, payload_keys: int, payload_bytes: int | None = None
    ) -> Rumor:
        """Publish a Bloom filter update rumor of ``payload_keys`` new keys.

        ``payload_bytes`` overrides the Table 2 wire-size interpolation
        with an exact size (used when gossiping real compressed diffs).
        """
        payload = (
            payload_bytes
            if payload_bytes is not None
            else self.world.wire.bloom_filter_bytes(payload_keys)
        )
        rumor = self.world.registry.create(
            RumorKind.BF_UPDATE, self.pid, payload, self.world.sim.now
        )
        self.directory.learn(rumor.rid)
        self.recent_learned.append(rumor.rid)
        self.hot[rumor.rid] = 0
        if self.intervals.reset():
            self._reschedule_sooner()
        return rumor

    # ------------------------------------------------------------------
    # join protocol (new member bootstrap)
    # ------------------------------------------------------------------

    def begin_join(
        self, bootstrap: int, on_complete: Callable[[], None] | None = None
    ) -> Rumor:
        """Join the community via ``bootstrap``: introduce ourselves (our
        join rumor) and download the full directory snapshot.

        Returns the minted join rumor.
        """
        bf_bytes = self.world.wire.bloom_filter_bytes(self.keys_shared)
        payload = self.config.peer_summary_bytes + bf_bytes
        rumor = self.world.registry.create(
            RumorKind.JOIN, self.pid, payload, self.world.sim.now
        )
        self.online = True
        self.world.network.set_online(self.pid, True)
        self.directory.learn(rumor.rid)
        self.recent_learned.append(rumor.rid)
        self.directory.add_member(self.pid)
        self.hot[rumor.rid] = 0
        self.world.send(
            self.pid,
            bootstrap,
            self.sizer.join_request(bf_bytes),
            lambda: self.world.peers[bootstrap]._handle_join_request(
                self.pid, rumor.rid, on_complete
            ),
            on_failed=lambda: self._join_bootstrap_failed(rumor, on_complete),
        )
        return rumor

    def _join_bootstrap_failed(
        self, rumor: Rumor, on_complete: Callable[[], None] | None
    ) -> None:
        """Bootstrap target was offline: retry with another established peer."""
        candidates = [
            p.pid
            for p in self.world.peers
            if p.online and p.pid != self.pid and p.directory.member_count > 1
        ]
        if not candidates:
            return
        bootstrap = int(candidates[int(self.rng.integers(0, len(candidates)))])
        bf_bytes = self.world.wire.bloom_filter_bytes(self.keys_shared)
        self.world.send(
            self.pid,
            bootstrap,
            self.sizer.join_request(bf_bytes),
            lambda: self.world.peers[bootstrap]._handle_join_request(
                self.pid, rumor.rid, on_complete
            ),
            on_failed=lambda: self._join_bootstrap_failed(rumor, on_complete),
        )

    def _handle_join_request(
        self, joiner: int, join_rid: int, on_complete: Callable[[], None] | None
    ) -> None:
        """Bootstrap side: learn the join rumor, ship the directory snapshot."""
        if not self.online:
            return
        if self.directory.learn(join_rid):
            self._apply_rumor_effects(join_rid)
            self.recent_learned.append(join_rid)
            self.hot[join_rid] = 0
            self.world.notify_learned(join_rid, self.pid)
            if self.intervals.reset():
                self._reschedule_sooner()
        per_member_bf = self.world.wire.bloom_filter_bytes(
            self.world.established_keys_per_peer
        )
        size = self.sizer.join_snapshot(self.directory.member_count, per_member_bf)
        self.world.send(
            self.pid,
            joiner,
            size,
            lambda: self.world.peers[joiner]._handle_join_snapshot(
                self.pid, join_rid, on_complete
            ),
        )

    def _handle_join_snapshot(
        self, bootstrap: int, own_rid: int, on_complete: Callable[[], None] | None
    ) -> None:
        """Joiner side: adopt the snapshot and start gossiping."""
        if not self.online:
            return
        donor_peer = self.world.peers[bootstrap]
        self.directory.copy_membership_from(donor_peer.directory)
        self.recent_learned.extend(donor_peer.recent_learned)
        # The copy replaced our knowledge wholesale; restore our own rumor
        # and self-membership (the donor may not have them yet).
        if self.directory.learn(own_rid):
            self.recent_learned.append(own_rid)
        self.directory.add_member(self.pid)
        self.world.notify_snapshot(self.pid, self.directory.known)
        self._schedule_timer(float(self.rng.uniform(0.0, 2.0)))
        if on_complete is not None:
            on_complete()

    # ------------------------------------------------------------------
    # the gossip round
    # ------------------------------------------------------------------

    def _schedule_timer(self, delay: float) -> None:
        self._cancel_timer()
        self._timer = self.world.sim.schedule(delay, self._on_timer)
        self._timer_time = self.world.sim.now + delay

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self.world.sim.cancel(self._timer)
            self._timer = None
            self._timer_time = float("inf")

    def _reschedule_sooner(self) -> None:
        """After an interval reset, pull the next round forward if the
        pending timer would fire later than one (new) interval from now."""
        if not self.online:
            return
        target = self.world.sim.now + self.intervals.interval
        if self._timer_time > target:
            self._schedule_timer(self.intervals.interval)

    def _on_timer(self) -> None:
        self._timer = None
        self._timer_time = float("inf")
        if not self.online:
            return
        self.round_counter += 1
        self.directory.expire_dead(self.world.sim.now, self.config.t_dead_s)
        hot_ids = list(self.hot)
        if self.config.anti_entropy_only:
            self._round_ae_push()
        elif hot_ids and self.round_counter % self.config.anti_entropy_period != 0:
            self._round_rumor(hot_ids)
        else:
            self._round_ae_pull(had_hot=bool(hot_ids))
        self._schedule_timer(self.intervals.interval)

    # -- rumor rounds ------------------------------------------------------

    def _round_rumor(self, hot_ids: list[int]) -> None:
        is_source = any(
            self.world.registry.get(rid).origin == self.pid for rid in hot_ids
        )
        target = self.world.selector.rumor_target(
            self.directory, self.rng, is_rumor_source=is_source
        )
        if target is None:
            return
        self.world.send(
            self.pid,
            target,
            self.sizer.rumor_push(len(hot_ids)),
            lambda: self.world.peers[target]._handle_rumor_push(self.pid, hot_ids),
            on_failed=lambda: self._contact_failed(target),
        )

    def _handle_rumor_push(self, src: int, pushed_ids: list[int]) -> None:
        if not self.online:
            return
        needed = [rid for rid in pushed_ids if not self.directory.knows(rid)]
        piggy: list[int] = []
        if self.config.use_partial_ae:
            piggy = [rid for rid in self.recent if rid not in pushed_ids]
        # Receiving a rumor message re-accelerates gossip (Section 3).
        if self.intervals.reset():
            self._reschedule_sooner()
        self.world.send(
            self.pid,
            src,
            self.sizer.rumor_reply(len(needed), len(piggy)),
            lambda: self.world.peers[src]._handle_rumor_reply(
                self.pid, pushed_ids, needed, piggy
            ),
        )

    def _handle_rumor_reply(
        self, replier: int, pushed_ids: list[int], needed: list[int], piggy: list[int]
    ) -> None:
        if not self.online:
            return
        needed_set = set(needed)
        for rid in pushed_ids:
            count = self.hot.get(rid)
            if count is None:
                continue  # retired while the exchange was in flight
            if rid in needed_set:
                self.hot[rid] = 0
            else:
                self.hot[rid] = count + 1
                if self.hot[rid] >= self.config.rumor_give_up_count:
                    self._retire(rid)
        if needed:
            payload = self.world.registry.payload_total(needed)
            self.world.send(
                self.pid,
                replier,
                self.sizer.rumor_data(payload),
                lambda: self.world.peers[replier]._handle_rumor_data(
                    needed, make_hot=True
                ),
            )
        if piggy:
            missing = [rid for rid in piggy if not self.directory.knows(rid)]
            if missing:
                self._pull_from(replier, missing)

    def _retire(self, rid: int) -> None:
        del self.hot[rid]
        self.recent.append(rid)

    def _handle_rumor_data(self, rids: list[int], make_hot: bool) -> None:
        if not self.online:
            return
        fresh = self.directory.learn_many(rids)
        for rid in fresh:
            self._apply_rumor_effects(rid)
            self.recent_learned.append(rid)
            if make_hot:
                self.hot[rid] = 0
            self.world.notify_learned(rid, self.pid)
        if fresh and self.intervals.reset():
            self._reschedule_sooner()

    def _apply_rumor_effects(self, rid: int) -> None:
        rumor = self.world.registry.get(rid)
        if rumor.kind is RumorKind.JOIN:
            self.directory.add_member(rumor.origin)
        elif rumor.kind is RumorKind.REJOIN:
            self.directory.mark_online(rumor.origin)
        # BF_UPDATE changes a filter, not membership.

    # -- anti-entropy rounds --------------------------------------------------

    def _round_ae_pull(self, had_hot: bool) -> None:
        target = self.world.selector.ae_target(self.directory, self.rng)
        if target is None:
            return
        digest = self.directory.digest
        self.world.send(
            self.pid,
            target,
            self.sizer.ae_request(),
            lambda: self.world.peers[target]._handle_ae_request(
                self.pid, digest, had_hot
            ),
            on_failed=lambda: self._contact_failed(target),
        )

    def _handle_ae_request(self, src: int, src_digest: int, src_had_hot: bool) -> None:
        if not self.online:
            return
        if src_digest == self.directory.digest:
            self.world.send(
                self.pid,
                src,
                self.sizer.ae_nothing(),
                lambda: self.world.peers[src]._handle_ae_nothing(src_had_hot),
            )
        else:
            # First reconciliation level: offer recently learned ids only,
            # plus our knowledge count so the requester can tell whether we
            # might hold anything it lacks beyond the window.
            recent = list(self.recent_learned)
            count = len(self.directory.known)
            self.world.send(
                self.pid,
                src,
                self.sizer.ae_recent(len(recent)),
                lambda: self.world.peers[src]._handle_ae_recent(
                    self.pid, recent, count
                ),
            )

    def _handle_ae_nothing(self, had_hot: bool) -> None:
        if not self.online:
            return
        if not had_hot:
            self.intervals.record_no_news_contact()

    def _handle_ae_recent(
        self, summarizer: int, recent_ids: list[int], their_count: int
    ) -> None:
        if not self.online:
            return
        missing = [rid for rid in recent_ids if not self.directory.knows(rid)]
        if their_count <= len(self.directory.known) + len(missing):
            # Pulling the missing recent ids (if any) fully explains the
            # knowledge gap; no need for the expensive summary.
            if missing:
                self._pull_from(summarizer, missing)
            return
        # The target knows more than the recent window accounts for: we
        # have diverged beyond it (long offline stretch, fresh join) —
        # fall back to the full directory summary, whose pull covers the
        # missing recents too.
        self.world.send(
            self.pid,
            summarizer,
            self.sizer.pull_request(0),
            lambda: self.world.peers[summarizer]._handle_summary_request(self.pid),
        )

    def _handle_summary_request(self, src: int) -> None:
        if not self.online:
            return
        self.world.send(
            self.pid,
            src,
            self.sizer.ae_summary(self.directory.member_count),
            lambda: self.world.peers[src]._handle_ae_summary(self.pid),
        )

    def _handle_ae_summary(self, summarizer: int) -> None:
        if not self.online:
            return
        missing = self.directory.missing_from(
            self.world.peers[summarizer].directory.known
        )
        if missing:
            self._pull_from(summarizer, sorted(missing))
        # Digests differed but we had everything: we know more than the
        # target; pull-only AE leaves it to the target's own rounds.

    def _round_ae_push(self) -> None:
        """AE-only baseline: ship the full summary unconditionally."""
        target = self.world.selector.ae_target(self.directory, self.rng)
        if target is None:
            return
        self.world.send(
            self.pid,
            target,
            self.sizer.ae_summary(self.directory.member_count),
            lambda: self.world.peers[target]._handle_ae_push(self.pid),
            on_failed=lambda: self._contact_failed(target),
        )

    def _handle_ae_push(self, src: int) -> None:
        if not self.online:
            return
        missing = self.directory.missing_from(self.world.peers[src].directory.known)
        if missing:
            self._pull_from(src, sorted(missing))

    def _pull_from(self, holder: int, rids: list[int]) -> None:
        """Request specific rumor payloads (partial/full AE pull)."""
        self.world.send(
            self.pid,
            holder,
            self.sizer.pull_request(len(rids)),
            lambda: self.world.peers[holder]._handle_pull_request(self.pid, rids),
        )

    def _handle_pull_request(self, requester: int, rids: list[int]) -> None:
        if not self.online:
            return
        have = [rid for rid in rids if self.directory.knows(rid)]
        if not have:
            return
        payload = self.world.registry.payload_total(have)
        self.world.send(
            self.pid,
            requester,
            self.sizer.rumor_data(payload),
            lambda: self.world.peers[requester]._handle_rumor_data(
                have, make_hot=False
            ),
        )

    # -- failures ---------------------------------------------------------------

    def _contact_failed(self, target: int) -> None:
        """A contact attempt failed: believe the target is offline."""
        self.directory.mark_offline(target, self.world.sim.now)

    def __repr__(self) -> str:
        return (
            f"GossipPeer(pid={self.pid}, online={self.online}, "
            f"hot={len(self.hot)}, known={len(self.directory.known)})"
        )
