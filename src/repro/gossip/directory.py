"""A peer's replicated view of the global directory.

In the prototype the directory holds every member's name, address and
Bloom filter (Figure 1).  For the gossip simulation we track the part that
drives protocol behaviour:

* the set of rumor ids the peer has learned (its information state — two
  peers whose rumor sets are equal have identical directories, since every
  directory change is a rumor);
* an O(1)-comparable digest of that set (an incremental XOR of mixed
  rumor ids), used for the cheap "same directory?" check that keeps
  stable-state anti-entropy traffic negligible;
* which peers it believes are currently online (gossip-target candidates;
  updated by failed contacts and by join/rejoin rumors, never gossiped —
  Section 3);
* a member count (sizes the anti-entropy directory summary on the wire);
* the time each believed-offline peer was marked offline, for the T_Dead
  expiry rule.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "DirectoryView",
    "digest_of_rids",
    "mix_rumor_id",
    "mix_rumor_ids",
    "mix_parts",
    "member_mix",
    "summary_mix",
    "compose_generations",
]

_MIX = 0x9E3779B97F4A7C15
_MASK = 0xFFFFFFFFFFFFFFFF


def mix_parts(*parts: int) -> int:
    """Avalanche a small integer tuple into one 64-bit hash
    (splitmix64 finalizer, applied per part).

    The building block of the serve cache's directory generation: each
    member contributes one mix, the mixes are XOR-folded (order-free),
    and any single-field perturbation avalanches the fold.
    """
    h = _MIX
    for p in parts:
        h = (h ^ (p & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK
        h ^= h >> 31
    return h


def member_mix(
    pid: int, filter_version: int, bloom_version: int, online: bool | int
) -> int:
    """One member's contribution to a directory generation.

    ``bloom_version`` is the replica filter's mutation counter, or -1
    when no full filter is held (partial views drop out-of-shard
    filters; the distinct sentinel keeps "absent" and "version 0"
    apart).  The final slot is the online flag as 0/1 — see
    :func:`summary_mix` for why the value 2 is reserved.
    """
    return mix_parts(pid, filter_version, bloom_version, 1 if online else 0)


def summary_mix(shard: int, version: int, member_count: int) -> int:
    """A foreign shard summary's contribution to a directory generation.

    Under partial views a node's search answer also depends on the
    coarse per-shard summaries it fans out over, so their freshness
    joins the fingerprint.  The final slot is the constant 2 — a value
    :func:`member_mix` can never produce in that position — so a summary
    contribution cannot collide with any member contribution.
    """
    return mix_parts(shard, version, member_count, 2)


def compose_generations(generations: Iterable[int]) -> int:
    """XOR-compose per-shard generation mixes into one fingerprint.

    XOR keeps the composition order-free and incremental: the flat
    directory generation equals the composition of any partition of its
    members into shards.
    """
    gen = 0
    for g in generations:
        gen ^= g
    return gen


def mix_rumor_id(rid: int) -> int:
    """SplitMix-style scramble so XOR digests don't cancel structurally.

    Shared by the simulation's :class:`DirectoryView` and the real
    network node so their incremental directory digests are comparable.
    """
    x = (rid + 1) * _MIX & _MASK
    x ^= x >> 31
    x = x * 0xBF58476D1CE4E5B9 & _MASK
    x ^= x >> 29
    return x


def mix_rumor_ids(rids: Sequence[int] | np.ndarray) -> np.ndarray:
    """Vectorized :func:`mix_rumor_id`: scramble a batch of rumor ids.

    uint64 arithmetic wraps modulo 2**64, matching the scalar masks, so
    ``mix_rumor_ids(rids)[i] == mix_rumor_id(rids[i])`` exactly.
    """
    x = (np.asarray(rids, dtype=np.uint64) + np.uint64(1)) * np.uint64(_MIX)
    x ^= x >> np.uint64(31)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(29)
    return x


def digest_of_rids(rids: Sequence[int]) -> int:
    """The XOR digest of a whole rumor-id set, computed from scratch.

    Equivalent to folding :func:`mix_rumor_id` over ``rids`` one at a
    time, but vectorized.  Used when a directory replica is rebuilt
    wholesale — a simulation bootstrap, or a restarting node reloading
    its persisted rumor knowledge from a :mod:`repro.store` checkpoint —
    so the recomputed digest is bit-identical to the incrementally
    maintained one and anti-entropy digest comparisons stay meaningful
    across a restart.
    """
    rid_list = list(rids)
    if not rid_list:
        return 0
    return int(np.bitwise_xor.reduce(mix_rumor_ids(rid_list)))


_mix = mix_rumor_id


class DirectoryView:
    """One peer's directory replica (simulation form)."""

    __slots__ = (
        "owner",
        "known",
        "digest",
        "believes_online",
        "member_count",
        "offline_since",
    )

    def __init__(self, owner: int, num_peer_slots: int) -> None:
        if num_peer_slots <= 0:
            raise ValueError("num_peer_slots must be positive")
        self.owner = owner
        self.known: set[int] = set()
        self.digest: int = 0
        #: believes_online[p] — p is a known member believed reachable.
        self.believes_online = np.zeros(num_peer_slots, dtype=bool)
        self.member_count = 0
        self.offline_since: dict[int, float] = {}

    # -- rumor knowledge --------------------------------------------------------

    def learn(self, rid: int) -> bool:
        """Record rumor ``rid`` as known; returns False if already known."""
        if rid in self.known:
            return False
        self.known.add(rid)
        self.digest ^= _mix(rid)
        return True

    def learn_many(self, rids: Sequence[int]) -> list[int]:
        """Batch :meth:`learn`; returns the newly-learned ids in order.

        Anti-entropy pushes deliver whole missing sets at once, so the
        digest is updated with one vectorized scramble + XOR-reduce
        instead of one :func:`mix_rumor_id` call per rumor.
        """
        fresh = list(dict.fromkeys(r for r in rids if r not in self.known))
        if not fresh:
            return []
        self.known.update(fresh)
        self.digest ^= digest_of_rids(fresh)
        return fresh

    def knows(self, rid: int) -> bool:
        """Whether this peer knows rumor ``rid``."""
        return rid in self.known

    def missing_from(self, other_known: set[int]) -> set[int]:
        """Rumor ids in ``other_known`` that this peer lacks."""
        return other_known - self.known

    def same_directory(self, other: "DirectoryView") -> bool:
        """O(1) probabilistic equality via digests."""
        return self.digest == other.digest

    # -- membership -----------------------------------------------------------------

    def add_member(self, peer_id: int) -> None:
        """Record a new community member (join rumor effect)."""
        if not self.believes_online[peer_id] and peer_id not in self.offline_since:
            self.member_count += 1
        self.mark_online(peer_id)

    def mark_online(self, peer_id: int) -> None:
        """Believe ``peer_id`` is reachable again."""
        self.believes_online[peer_id] = True
        self.offline_since.pop(peer_id, None)

    def mark_offline(self, peer_id: int, now: float) -> None:
        """A contact attempt failed; believe ``peer_id`` is offline.

        Not gossiped — each peer discovers departures independently.
        """
        if self.believes_online[peer_id]:
            self.believes_online[peer_id] = False
            self.offline_since[peer_id] = now

    def expire_dead(self, now: float, t_dead_s: float) -> list[int]:
        """Drop members continuously offline for more than ``t_dead_s``.

        Returns the dropped peer ids.
        """
        dead = [p for p, t in self.offline_since.items() if now - t > t_dead_s]
        for p in dead:
            del self.offline_since[p]
            self.member_count -= 1
        return dead

    def copy_membership_from(self, other: "DirectoryView") -> None:
        """Bootstrap: adopt another peer's full directory snapshot."""
        self.known = set(other.known)
        self.digest = other.digest
        self.believes_online[:] = other.believes_online
        self.member_count = other.member_count
        self.offline_since = dict(other.offline_since)

    def online_candidates(self) -> np.ndarray:
        """Ids of believed-online peers other than the owner."""
        ids = np.flatnonzero(self.believes_online)
        return ids[ids != self.owner]

    def __repr__(self) -> str:
        return (
            f"DirectoryView(owner={self.owner}, known={len(self.known)}, "
            f"members={self.member_count})"
        )
