"""The adaptive gossip interval (paper Section 3).

Start at the base interval (30 s).  While a peer has nothing to spread, it
counts contacts that found an identical directory; every time the count
reaches the gossip-less threshold (2) the interval grows by the slow-down
constant (5 s), up to the maximum (60 s per Table 2).  Receiving a rumor
message or learning anything through anti-entropy resets the interval to
the base immediately, so new information re-accelerates the community.
"""

from __future__ import annotations

from repro.constants import GossipConfig

__all__ = ["IntervalPolicy"]


class IntervalPolicy:
    """Per-peer adaptive interval state machine."""

    __slots__ = ("config", "interval", "_no_news_count")

    def __init__(self, config: GossipConfig) -> None:
        self.config = config
        self.interval = config.base_interval_s
        self._no_news_count = 0

    @property
    def no_news_count(self) -> int:
        """Consecutive same-directory contacts since the last slow-down."""
        return self._no_news_count

    def record_no_news_contact(self) -> bool:
        """One contact found an identical directory (and we had no rumor).

        Returns True when this contact triggered a slow-down.
        """
        self._no_news_count += 1
        if self._no_news_count >= self.config.gossip_less_threshold:
            self._no_news_count = 0
            if self.interval < self.config.max_interval_s:
                self.interval = min(
                    self.config.max_interval_s, self.interval + self.config.slowdown_s
                )
                return True
        return False

    def reset(self) -> bool:
        """New information arrived: snap back to the base interval.

        Returns True if the interval actually shrank (caller should then
        reschedule its gossip timer sooner).
        """
        self._no_news_count = 0
        if self.interval > self.config.base_interval_s:
            self.interval = self.config.base_interval_s
            return True
        return False
