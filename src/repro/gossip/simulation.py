"""Gossip simulation scenarios: the experiments of Section 7.2.

:class:`GossipSimulation` wires together the event engine, the
bandwidth-constrained network, the rumor registry, and a set of
:class:`~repro.sim.metrics.ConvergenceTracker` observers, then exposes the
paper's four experiment shapes:

* :func:`run_propagation` — one Bloom-filter update spreading through a
  stable community (Figure 2).
* :func:`run_join` — m new members joining an established community of n
  simultaneously, each sharing 20 000 keys (Figure 3).
* :func:`run_poisson_joins` — arrivals at Poisson times into a stable
  community, with/without partial anti-entropy (Figure 4a).
* :func:`run_churn` — a dynamic community with always-on and churning
  members (Figures 4b, 4c, 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.constants import GossipConfig, WireSizes
from repro.gossip.bandwidth_aware import BandwidthAwareSelector, FlatSelector
from repro.gossip.messages import MessageSizer
from repro.gossip.rumor import RumorRegistry
from repro.gossip.simpeer import GossipPeer
from repro.sim.churn import ChurnModel
from repro.sim.engine import Simulator
from repro.sim.metrics import ConvergenceTracker
from repro.sim.network import Network
from repro.sim.topology import make_topology
from repro.utils.rng import make_rng

__all__ = [
    "GossipSimulation",
    "PropagationResult",
    "JoinResult",
    "DynamicEvent",
    "DynamicResult",
    "run_propagation",
    "run_join",
    "run_poisson_joins",
    "run_churn",
]

_LATENCY_S = 0.01


class GossipSimulation:
    """A community of gossiping peers on a shared simulated network."""

    def __init__(
        self,
        link_speeds: np.ndarray,
        config: GossipConfig | None = None,
        seed: int | np.random.Generator | None = 0,
        established_keys_per_peer: int = 20_000,
        bandwidth_bucket_s: float = 10.0,
    ) -> None:
        self.config = config or GossipConfig()
        self.wire = WireSizes(header=self.config.header_bytes)
        self.sizer = MessageSizer(self.config, self.wire)
        self.sim = Simulator()
        # Table 2's 5 ms per-gossip-op CPU cost rides on every message.
        self.network = Network(
            self.sim,
            link_speeds,
            latency_s=_LATENCY_S + self.config.cpu_gossip_time_s,
            bucket_s=bandwidth_bucket_s,
        )
        self.registry = RumorRegistry()
        self.established_keys_per_peer = established_keys_per_peer
        rng = make_rng(seed)
        self.rng = rng
        if self.config.bandwidth_aware:
            self.selector = BandwidthAwareSelector(link_speeds, self.config)
        else:
            self.selector = FlatSelector(self.network.num_peers)
        peer_rngs = rng.spawn(self.network.num_peers)
        self.peers = [
            GossipPeer(pid, self, peer_rngs[pid], keys_shared=established_keys_per_peer)
            for pid in range(self.network.num_peers)
        ]
        self.trackers: list[ConvergenceTracker] = []
        # All peers start offline; scenarios bring them up.
        self.network.online[:] = False

    # -- plumbing used by GossipPeer ------------------------------------------

    @property
    def num_slots(self) -> int:
        """Total peer slots (established + potential joiners)."""
        return self.network.num_peers

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        on_delivered: Callable[[], None],
        on_failed: Callable[[], None] | None = None,
    ) -> None:
        """Message send used by peers (delegates to the network)."""
        self.network.send(src, dst, nbytes, on_delivered, on_failed)

    def notify_learned(self, rid: int, pid: int) -> None:
        """A peer learned rumor ``rid``."""
        now = self.sim.now
        for tracker in self.trackers:
            tracker.peer_learned(rid, pid, now)

    def notify_snapshot(self, pid: int, known: set[int]) -> None:
        """A joiner adopted a directory snapshot containing ``known``."""
        now = self.sim.now
        for tracker in self.trackers:
            tracker.peer_learned_many(pid, known, now)
            tracker.peer_online(pid, lambda rid: rid in known)

    def notify_offline(self, pid: int) -> None:
        """A peer went offline."""
        now = self.sim.now
        for tracker in self.trackers:
            tracker.peer_offline(pid, now)

    def notify_online(self, pid: int) -> None:
        """A peer came (back) online."""
        known = self.peers[pid].directory.known
        for tracker in self.trackers:
            tracker.peer_online(pid, lambda rid: rid in known)

    # -- scenario helpers ---------------------------------------------------------

    def establish(self, peer_ids: list[int] | range, stable: bool = True) -> None:
        """Start ``peer_ids`` as a consistent, established community.

        Every established peer knows every other as an online member; no
        historical rumors exist (all digests equal).  ``stable`` starts
        gossip intervals at the maximum, as in a long-quiescent community.
        """
        ids = list(peer_ids)
        for pid in ids:
            directory = self.peers[pid].directory
            directory.believes_online[ids] = True
            directory.member_count = len(ids)
        for pid in ids:
            self.peers[pid].start(stable=stable)

    def online_peer_ids(self) -> list[int]:
        """Ids of peers currently online."""
        return [p.pid for p in self.peers if p.online]

    def tracked_register(
        self, rid: int, origin: int, label: str = ""
    ) -> None:
        """Register rumor ``rid`` with every tracker: required knowers are
        all currently-online peers except the origin."""
        online = {p.pid for p in self.peers if p.online and p.pid != origin}
        now = self.sim.now
        for tracker in self.trackers:
            tracker.register(rid, now, set(online), label=label)


# ---------------------------------------------------------------------------
# Figure 2: propagating one Bloom filter update
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PropagationResult:
    """Outcome of one propagation run (one point of Figure 2)."""

    community_size: int
    topology: str
    gossip_interval_s: float
    propagation_time_s: float
    total_bytes: int
    per_peer_bandwidth_Bps: float
    messages: int
    converged: bool


def run_propagation(
    n: int,
    topology: str = "dsl",
    config: GossipConfig | None = None,
    payload_keys: int = 1000,
    seed: int = 0,
    max_time_s: float = 24 * 3600.0,
) -> PropagationResult:
    """Figure 2: time/volume/bandwidth to spread one ``payload_keys``-key
    Bloom filter diff through a stable ``n``-peer community."""
    cfg = config or GossipConfig()
    rng = make_rng(seed)
    speeds = make_topology(topology, n, rng)
    world = GossipSimulation(speeds, cfg, seed=rng, established_keys_per_peer=20_000)
    tracker = ConvergenceTracker()
    world.trackers.append(tracker)
    world.establish(range(n), stable=True)

    baseline_bytes = world.network.stats.total_bytes  # 0, but explicit
    rumor = world.peers[0].originate_update(payload_keys)
    world.tracked_register(rumor.rid, 0, label="bf_update")
    world.peers[0]._reschedule_sooner()

    world.sim.run(until=max_time_s, stop_when=tracker.all_converged)
    times = tracker.convergence_times()
    converged = rumor.rid in times
    elapsed = times.get(rumor.rid, world.sim.now)
    total = world.network.stats.total_bytes - baseline_bytes
    per_peer = total / (n * elapsed) if elapsed > 0 else 0.0
    return PropagationResult(
        community_size=n,
        topology=topology,
        gossip_interval_s=cfg.base_interval_s,
        propagation_time_s=elapsed,
        total_bytes=total,
        per_peer_bandwidth_Bps=per_peer,
        messages=world.network.stats.total_messages,
        converged=converged,
    )


# ---------------------------------------------------------------------------
# Figure 3: simultaneous joins
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JoinResult:
    """Outcome of one mass-join run (one point of Figure 3)."""

    initial_size: int
    joiners: int
    topology: str
    consistency_time_s: float
    total_bytes: int
    converged: bool


def run_join(
    n_initial: int,
    m_joiners: int,
    topology: str = "lan",
    config: GossipConfig | None = None,
    keys_per_peer: int = 20_000,
    seed: int = 0,
    max_time_s: float = 24 * 3600.0,
) -> JoinResult:
    """Figure 3: ``m_joiners`` join an established ``n_initial``-peer
    community simultaneously, each sharing ``keys_per_peer`` keys.

    Consistency is reached when every join rumor is known to all online
    peers and every joiner has completed its directory download."""
    cfg = config or GossipConfig()
    rng = make_rng(seed)
    total_slots = n_initial + m_joiners
    speeds = make_topology(topology, total_slots, rng)
    world = GossipSimulation(
        speeds, cfg, seed=rng, established_keys_per_peer=keys_per_peer
    )
    tracker = ConvergenceTracker()
    world.trackers.append(tracker)
    world.establish(range(n_initial), stable=True)

    snapshots_done = [0]
    last_snapshot_time = [0.0]

    def _on_snapshot() -> None:
        snapshots_done[0] += 1
        last_snapshot_time[0] = world.sim.now

    join_rids = []
    for j in range(m_joiners):
        pid = n_initial + j
        bootstrap = int(rng.integers(0, n_initial))
        world.peers[pid].keys_shared = keys_per_peer
        rumor = world.peers[pid].begin_join(bootstrap, on_complete=_on_snapshot)
        world.tracked_register(rumor.rid, pid, label="join")
        join_rids.append(rumor.rid)

    def _done() -> bool:
        return tracker.all_converged() and snapshots_done[0] >= m_joiners

    world.sim.run(until=max_time_s, stop_when=_done)
    converged = _done()
    times = tracker.convergence_times()
    rumor_time = max(times.values(), default=world.sim.now)
    elapsed = max(rumor_time, last_snapshot_time[0]) if converged else world.sim.now
    return JoinResult(
        initial_size=n_initial,
        joiners=m_joiners,
        topology=topology,
        consistency_time_s=elapsed,
        total_bytes=world.network.stats.total_bytes,
        converged=converged,
    )


# ---------------------------------------------------------------------------
# Figures 4 and 5: dynamic communities
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DynamicEvent:
    """One arrival event and its measured convergence times."""

    rid: int
    origin: int
    created_at: float
    label: str  # "join" (carries new keys) or "rejoin"
    convergence_s: float | None  # under the all-peers condition
    convergence_fast_s: float | None = None  # fast-peers-only condition


@dataclass
class DynamicResult:
    """Outcome of a dynamic-community run (Figures 4b, 4c, 5)."""

    community_size: int
    topology: str
    events: list[DynamicEvent] = field(default_factory=list)
    bandwidth_times: np.ndarray = field(default_factory=lambda: np.zeros(0))
    bandwidth_Bps: np.ndarray = field(default_factory=lambda: np.zeros(0))
    total_bytes: int = 0

    def convergence_samples(
        self, label: str | None = None, fast_condition: bool = False
    ) -> list[float]:
        """Converged-event times, optionally filtered by event label and
        using the fast-peers-only convergence condition."""
        out = []
        for ev in self.events:
            if label is not None and ev.label != label:
                continue
            value = ev.convergence_fast_s if fast_condition else ev.convergence_s
            if value is not None:
                out.append(value)
        return out


def run_poisson_joins(
    n_established: int = 1000,
    n_events: int = 100,
    mean_interarrival_s: float = 90.0,
    topology: str = "lan",
    config: GossipConfig | None = None,
    new_keys: int = 1000,
    seed: int = 0,
    settle_time_s: float = 3600.0,
) -> DynamicResult:
    """Figure 4(a): arrivals at Poisson times into a stable community.

    ``n_events`` members (initially offline) rejoin, each sharing
    ``new_keys`` new keys, at exponential interarrivals; we measure each
    arrival rumor's convergence time.  Toggle ``config.use_partial_ae``
    for the LAN vs LAN-NPA comparison.
    """
    cfg = config or GossipConfig()
    rng = make_rng(seed)
    total = n_established + n_events
    speeds = make_topology(topology, total, rng)
    world = GossipSimulation(speeds, cfg, seed=rng)
    tracker = ConvergenceTracker()
    world.trackers.append(tracker)
    # Everyone is a known member; the last n_events start offline.
    for pid in range(total):
        directory = world.peers[pid].directory
        directory.believes_online[:total] = True
        directory.member_count = total
    for pid in range(n_established):
        world.peers[pid].start(stable=True)
    for pid in range(n_established, total):
        # Established peers will discover these are offline on contact.
        world.peers[pid].online = False
        world.network.set_online(pid, False)

    arrival_times = np.cumsum(rng.exponential(mean_interarrival_s, size=n_events))
    rid_info: dict[int, tuple[int, float, str]] = {}

    def _arrive(pid: int) -> None:
        rumor = world.peers[pid].rejoin(new_keys=new_keys)
        world.tracked_register(rumor.rid, pid, label="join")
        rid_info[rumor.rid] = (pid, world.sim.now, "join")

    for i in range(n_events):
        world.sim.schedule_at(float(arrival_times[i]), _arrive, n_established + i)

    horizon = float(arrival_times[-1]) + settle_time_s
    world.sim.run(until=horizon, stop_when=lambda: len(rid_info) == n_events and tracker.all_converged())
    times = tracker.convergence_times()
    events = [
        DynamicEvent(rid, origin, created, label, times.get(rid))
        for rid, (origin, created, label) in sorted(rid_info.items())
    ]
    bw_t, bw_r = world.network.bandwidth.series()
    return DynamicResult(
        community_size=total,
        topology=topology,
        events=events,
        bandwidth_times=bw_t,
        bandwidth_Bps=bw_r,
        total_bytes=world.network.stats.total_bytes,
    )


def run_churn(
    n_members: int = 1000,
    horizon_s: float = 4 * 3600.0,
    topology: str = "lan",
    config: GossipConfig | None = None,
    always_on_fraction: float = 0.40,
    mean_online_s: float = 3600.0,
    mean_offline_s: float = 8400.0,
    new_keys_prob: float = 0.05,
    new_keys: int = 1000,
    seed: int = 0,
    settle_time_s: float = 1800.0,
) -> DynamicResult:
    """Figures 4(b,c) and 5: normal operation of a dynamic community.

    40% of members stay online; the rest alternate online/offline with
    exponential durations; 5% of rejoins share ``new_keys`` new keys
    (labelled "join" per the paper's terminology, vs "rejoin" for
    no-new-information arrivals).  Events created in the last
    ``settle_time_s`` of the horizon are discarded (they may not have had
    time to converge).  Under a MIX topology with
    ``config.bandwidth_aware`` the result also carries each event's
    convergence time under the fast-peers-only condition (MIX-F/MIX-S).
    """
    cfg = config or GossipConfig()
    rng = make_rng(seed)
    speeds = make_topology(topology, n_members, rng)
    world = GossipSimulation(speeds, cfg, seed=rng)

    tracker_all = ConvergenceTracker()
    world.trackers.append(tracker_all)
    fast_mask = speeds >= cfg.fast_threshold_Bps
    tracker_fast = ConvergenceTracker(required=lambda pid: bool(fast_mask[pid]))
    world.trackers.append(tracker_fast)

    churn = ChurnModel(
        n_members,
        always_on_fraction=always_on_fraction,
        mean_online_s=mean_online_s,
        mean_offline_s=mean_offline_s,
        new_keys_prob=new_keys_prob,
        seed=rng,
    )
    schedules = churn.generate(horizon_s)

    # Everyone is a long-standing member; initial online state follows the
    # schedules' stationary draw.
    for pid in range(n_members):
        directory = world.peers[pid].directory
        directory.believes_online[:] = True
        directory.member_count = n_members
    for sched in schedules:
        peer = world.peers[sched.peer_id]
        if sched.initially_online:
            peer.start(stable=True)
        else:
            peer.online = False
            world.network.set_online(peer.pid, False)

    rid_info: dict[int, tuple[int, float, str]] = {}
    measure_until = horizon_s - settle_time_s

    def _toggle(pid: int) -> None:
        peer = world.peers[pid]
        if peer.online:
            peer.go_offline()
        else:
            keys = new_keys if churn.rejoin_has_new_keys() else 0
            rumor = peer.rejoin(new_keys=keys)
            label = "join" if keys else "rejoin"
            if world.sim.now <= measure_until:
                world.tracked_register(rumor.rid, pid, label=label)
                rid_info[rumor.rid] = (pid, world.sim.now, label)

    for sched in schedules:
        for t in sched.transitions:
            world.sim.schedule_at(float(t), _toggle, sched.peer_id)

    world.sim.run(until=horizon_s)
    times_all = tracker_all.convergence_times()
    times_fast = tracker_fast.convergence_times()
    events = [
        DynamicEvent(
            rid, origin, created, label, times_all.get(rid), times_fast.get(rid)
        )
        for rid, (origin, created, label) in sorted(rid_info.items())
    ]
    bw_t, bw_r = world.network.bandwidth.series()
    return DynamicResult(
        community_size=n_members,
        topology=topology,
        events=events,
        bandwidth_times=bw_t,
        bandwidth_Bps=bw_r,
        total_bytes=world.network.stats.total_bytes,
    )
