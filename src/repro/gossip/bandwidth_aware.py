"""Gossip-target selection policies.

*Flat* selection (the base algorithm) picks uniformly among believed-online
peers.  The *bandwidth-aware* policy (Section 7.2) divides peers into fast
(>= 512 Kb/s) and slow (modem) classes:

* a fast peer rumoring picks a slow target with probability 1%, otherwise
  a fast one; its anti-entropy always targets a fast peer;
* a slow peer rumoring targets slow peers only — unless it is the rumor's
  source, in which case its first push goes to a fast peer so the rumor
  enters the fast tier immediately; its anti-entropy is uniform.

Selection is rejection sampling against the peer's believed-online view:
draw from the class pool, keep if believed online, fall back to a scan of
the pool when the pool is mostly offline.  This keeps target choice O(1)
in the common case instead of O(N) per gossip round.
"""

from __future__ import annotations

import numpy as np

from repro.constants import GossipConfig
from repro.gossip.directory import DirectoryView

__all__ = ["FlatSelector", "BandwidthAwareSelector"]

_MAX_REJECTS = 24


def _sample_from_pool(
    pool: np.ndarray,
    directory: DirectoryView,
    rng: np.random.Generator,
) -> int | None:
    """A believed-online member of ``pool`` other than the owner, or None."""
    if pool.size == 0:
        return None
    owner = directory.owner
    believes = directory.believes_online
    for _ in range(_MAX_REJECTS):
        pid = int(pool[rng.integers(0, pool.size)])
        if pid != owner and believes[pid]:
            return pid
    # Sparse pool: scan for valid candidates once.
    mask = believes[pool]
    candidates = pool[mask]
    candidates = candidates[candidates != owner]
    if candidates.size == 0:
        return None
    return int(candidates[rng.integers(0, candidates.size)])


class FlatSelector:
    """Uniform selection among all believed-online peers."""

    __slots__ = ("_all",)

    def __init__(self, num_peer_slots: int) -> None:
        self._all = np.arange(num_peer_slots)

    def rumor_target(
        self,
        directory: DirectoryView,
        rng: np.random.Generator,
        is_rumor_source: bool = False,
    ) -> int | None:
        """Target for a rumoring round."""
        return _sample_from_pool(self._all, directory, rng)

    def ae_target(
        self, directory: DirectoryView, rng: np.random.Generator
    ) -> int | None:
        """Target for an anti-entropy round."""
        return _sample_from_pool(self._all, directory, rng)


class BandwidthAwareSelector:
    """The Section 7.2 fast/slow tiered policy."""

    __slots__ = ("fast_pool", "slow_pool", "is_fast", "_all", "fast_to_slow_prob")

    def __init__(self, link_speeds: np.ndarray, config: GossipConfig) -> None:
        speeds = np.asarray(link_speeds, dtype=float)
        self.is_fast = speeds >= config.fast_threshold_Bps
        self.fast_pool = np.flatnonzero(self.is_fast)
        self.slow_pool = np.flatnonzero(~self.is_fast)
        self._all = np.arange(speeds.size)
        self.fast_to_slow_prob = config.fast_to_slow_prob

    def rumor_target(
        self,
        directory: DirectoryView,
        rng: np.random.Generator,
        is_rumor_source: bool = False,
    ) -> int | None:
        """Tier-aware rumor target (fast->fast with 1% slow; slow->slow
        unless the peer originated the rumor)."""
        owner_fast = bool(self.is_fast[directory.owner])
        if owner_fast:
            want_slow = rng.random() < self.fast_to_slow_prob
            pool = self.slow_pool if want_slow else self.fast_pool
            target = _sample_from_pool(pool, directory, rng)
            if target is None:  # chosen tier empty/offline: try the other
                other = self.fast_pool if want_slow else self.slow_pool
                target = _sample_from_pool(other, directory, rng)
            return target
        # Slow peer: push the rumor into the fast tier if it originated it,
        # otherwise stay among slow peers so it cannot throttle fast ones.
        pool = self.fast_pool if is_rumor_source else self.slow_pool
        target = _sample_from_pool(pool, directory, rng)
        if target is None:
            target = _sample_from_pool(self._all, directory, rng)
        return target

    def ae_target(
        self, directory: DirectoryView, rng: np.random.Generator
    ) -> int | None:
        """Anti-entropy target: fast peers reconcile with fast peers;
        slow peers pick uniformly."""
        if bool(self.is_fast[directory.owner]):
            target = _sample_from_pool(self.fast_pool, directory, rng)
            if target is None:
                target = _sample_from_pool(self._all, directory, rng)
            return target
        return _sample_from_pool(self._all, directory, rng)
