"""Wire-size model for gossip messages (paper Table 2).

The simulator transfers byte *counts*, not contents; this module is the
single place those counts are computed so experiments and tests agree on
the cost of every message type.

Message inventory
-----------------
``rumor_push``       header + one id digest (6 B) per active rumor
``rumor_reply``      header + 6 B per needed id + 6 B per partial-AE id
``rumor_data``       header + sum of rumor payloads
``ae_request``       header + directory digest (8 B)
``ae_nothing``       header (digests matched)
``ae_recent``        header + 6 B per recently-learned rumor id (first,
                     cheap reconciliation level: "message sizes are mostly
                     proportional to the number of changes being
                     propagated, not the community size")
``ae_summary``       header + 48 B per known member (the full directory
                     summary whose size the paper notes is proportional
                     to community size; fallback when peers have diverged
                     beyond the recent window)
``pull_request``     header + 6 B per requested id
``join_request``     header + joiner's own peer record + Bloom filter
``join_snapshot``    header + (48 B + Bloom filter) per known member

The serve inventory (persistent queries over the wire,
:data:`repro.gossip.wire.SERVE_MESSAGES`) is priced here too so the
2x model-vs-codec envelope covers it, but it stays outside the Table-2
gossip accounting: ``model_size`` dispatches on it, the per-exchange
gossip helpers above never see it.

``subscribe_request``  header + id (8 B) + terms + notify address + time
``subscribe_ack``      header + id + verdict byte + message
``notify``             header + id + origin (4 B) + doc id + document
``unsubscribe``        header + id

The partial-view inventory (:data:`repro.gossip.wire.PARTIALVIEW_MESSAGES`)
is priced the same way — covered by the 2x envelope, outside Table 2:

``shard_summary_request``   header + flag byte + 4 B per shard id +
                            12 B per advertised (shard, token) pair
``shard_summary_reply``     header + (17 B + bloom-or-diff) per summary
                            entry + (48 B + bloom) per full member entry
``view_exchange``           header + want (2 B) + 48 B per record
``shard_match_query``       header + shard (4 B) + terms
``shard_match_response``    header + shard (4 B) + 12 B per (pid, mask)

The content inventory (:data:`repro.gossip.wire.CONTENT_MESSAGES`) —
chunked transfers and replication pushes — is priced the same way,
covered by the 2x envelope, outside Table 2.  A manifest prices as
doc id + 16 B of fixed fields + 32 B digest + 4 B per chunk CRC:

``manifest_request``   header + doc id
``manifest_reply``     header + flag byte + manifest + holder addresses
``chunk_request``      header + doc id + index (4 B) + offset (4 B)
``chunk_reply``        header + flag + doc id + 12 B meta + chunk bytes
``manifest_push``      header + manifest
``manifest_ack``       header + doc id + flag + 4 B per missing index
``chunk_push``         header + doc id + index (4 B) + chunk bytes

The analytics inventory (:data:`repro.gossip.wire.ANALYTICS_MESSAGES`) —
gossiped frequent-term sketches and browse RPCs — is priced the same
way, covered by the 2x envelope, outside Table 2.  A sketch entry prices
as 12 B of fixed fields plus (2 B + term + 8 B count) per counter:

``sketch_exchange``    header + sketch entries + 12 B per digest version
``sketch_reply``       header + sketch entries + 12 B per digest version
``top_terms_request``  header + k (2 B)
``top_terms_reply``    header + origin count (4 B) + per-term entries
``browse_request``     header + path + k (2 B)
``browse_response``    header + flag + path + generation (8 B) + entries
"""

from __future__ import annotations

from repro.constants import GossipConfig, WireSizes
from repro.gossip import wire

__all__ = ["MessageSizer"]

_ID_BYTES = 6  # one rumor-id digest on the wire (Table 2's "BF summary")
_DIGEST_BYTES = 8


class MessageSizer:
    """Computes message sizes from protocol configuration."""

    __slots__ = ("config", "wire")

    def __init__(self, config: GossipConfig, wire: WireSizes | None = None) -> None:
        self.config = config
        self.wire = wire or WireSizes(header=config.header_bytes)

    def rumor_push(self, num_active: int) -> int:
        """x announces its active rumor ids to y."""
        return self.config.header_bytes + _ID_BYTES * num_active

    def rumor_reply(self, num_needed: int, num_piggyback: int) -> int:
        """y answers which ids it needs, piggybacking partial-AE ids."""
        return self.config.header_bytes + _ID_BYTES * (num_needed + num_piggyback)

    def rumor_data(self, payload_bytes: int) -> int:
        """x ships the needed rumor payloads."""
        return self.config.header_bytes + payload_bytes

    def ae_request(self) -> int:
        """x asks y for its directory summary, sending its own digest."""
        return self.config.header_bytes + _DIGEST_BYTES

    def ae_nothing(self) -> int:
        """Digests matched; nothing to exchange."""
        return self.config.header_bytes

    def ae_recent(self, num_ids: int) -> int:
        """Cheap reconciliation: the target's recently-learned rumor ids."""
        return self.config.header_bytes + _ID_BYTES * num_ids

    def ae_summary(self, num_members_known: int) -> int:
        """y's full directory summary (proportional to community size)."""
        return self.config.header_bytes + self.config.peer_summary_bytes * num_members_known

    def pull_request(self, num_ids: int) -> int:
        """Request specific rumor payloads by id."""
        return self.config.header_bytes + _ID_BYTES * num_ids

    def join_request(self, joiner_bf_bytes: int) -> int:
        """A new member introduces itself to its bootstrap peer."""
        return (
            self.config.header_bytes
            + self.config.peer_summary_bytes
            + joiner_bf_bytes
        )

    def join_snapshot(self, num_members: int, bf_bytes_per_member: int) -> int:
        """Full directory download for a new member: every member's record
        plus its Bloom filter (the 16 MB-for-1000-peers case of Section 7.2)."""
        return self.config.header_bytes + num_members * (
            self.config.peer_summary_bytes + bf_bytes_per_member
        )

    # -- serve inventory (persistent queries; outside Table 2) --------------

    _SUB_ID_BYTES = 8

    def subscribe_request(self, terms_bytes: int, address_bytes: int) -> int:
        """A client posts a standing query to a serving node."""
        return (
            self.config.header_bytes
            + self._SUB_ID_BYTES
            + terms_bytes
            + 2 + address_bytes
            + 8  # created_at
        )

    def subscribe_ack(self, message_bytes: int) -> int:
        """The serving node's verdict on a subscription."""
        return self.config.header_bytes + self._SUB_ID_BYTES + 1 + 2 + message_bytes

    def notify(self, doc_id_bytes: int, text_bytes: int) -> int:
        """One upcall: a matching document pushed to the subscriber."""
        return (
            self.config.header_bytes
            + self._SUB_ID_BYTES
            + 4  # origin peer id
            + 2 + doc_id_bytes
            + 4 + text_bytes
        )

    def unsubscribe(self) -> int:
        """Deregister a standing query by id."""
        return self.config.header_bytes + self._SUB_ID_BYTES

    # -- partial-view inventory (sharded directory; outside Table 2) --------

    _SHARD_ID_BYTES = 4
    _SUMMARY_META_BYTES = 17  # shard + member_count + version + diff flag
    _MATCH_HIT_BYTES = 12  # pid + u64 term bitmask
    _KNOWN_TOKEN_BYTES = 12  # shard id + u64 summary token

    def shard_summary_request(self, num_shards: int, num_known: int = 0) -> int:
        """Ask a peer for shard summaries (and maybe member entries),
        advertising known summary tokens so the reply can send diffs."""
        return (
            self.config.header_bytes
            + 1
            + self._SHARD_ID_BYTES * num_shards
            + self._KNOWN_TOKEN_BYTES * num_known
        )

    def shard_summary_reply(
        self, summary_blob_bytes: list[int], member_blob_bytes: list[int]
    ) -> int:
        """Per-shard summaries plus requested full member entries."""
        return (
            self.config.header_bytes
            + sum(self._SUMMARY_META_BYTES + b for b in summary_blob_bytes)
            + sum(self.config.peer_summary_bytes + b for b in member_blob_bytes)
        )

    def view_exchange(self, num_records: int) -> int:
        """A bounded random sample of membership records."""
        return (
            self.config.header_bytes
            + 2
            + self.config.peer_summary_bytes * num_records
        )

    def shard_match_query(self, terms_bytes: int) -> int:
        """Fine-grained candidate query against one shard's member."""
        return self.config.header_bytes + self._SHARD_ID_BYTES + terms_bytes

    def shard_match_response(self, num_hits: int) -> int:
        """Per-peer term-hit bitmasks for one shard."""
        return (
            self.config.header_bytes
            + self._SHARD_ID_BYTES
            + self._MATCH_HIT_BYTES * num_hits
        )

    # -- content inventory (chunked transfers; outside Table 2) -------------

    _CHUNK_INDEX_BYTES = 4
    _CHUNK_OFFSET_BYTES = 4
    _DIGEST_LEN_BYTES = 32  # SHA-256 of the whole document
    _CRC_BYTES = 4

    def _manifest_bytes(self, doc_id_bytes: int, num_chunks: int) -> int:
        # doc id + origin (4) + total_size (8) + chunk_size (4) + digest
        # + one CRC-32 per chunk.
        return (
            2 + doc_id_bytes
            + 4 + 8 + 4
            + self._DIGEST_LEN_BYTES
            + self._CRC_BYTES * num_chunks
        )

    def manifest_request(self, doc_id_bytes: int) -> int:
        """Ask a peer for a document's manifest."""
        return self.config.header_bytes + 2 + doc_id_bytes

    def manifest_reply(
        self, doc_id_bytes: int, num_chunks: int, holder_bytes: int
    ) -> int:
        """The manifest plus the replica addresses holding the chunks."""
        return (
            self.config.header_bytes
            + 1
            + self._manifest_bytes(doc_id_bytes, num_chunks)
            + holder_bytes
        )

    def chunk_request(self, doc_id_bytes: int) -> int:
        """Fetch one chunk, resumable from a byte offset."""
        return (
            self.config.header_bytes
            + 2 + doc_id_bytes
            + self._CHUNK_INDEX_BYTES
            + self._CHUNK_OFFSET_BYTES
        )

    def chunk_reply(self, doc_id_bytes: int, data_bytes: int) -> int:
        """One chunk's bytes from the requested offset."""
        return (
            self.config.header_bytes
            + 1
            + 2 + doc_id_bytes
            + self._CHUNK_INDEX_BYTES
            + self._CHUNK_OFFSET_BYTES
            + 4  # total chunk length
            + data_bytes
        )

    def manifest_push(self, doc_id_bytes: int, num_chunks: int) -> int:
        """A holder offers a document to a ring successor."""
        return self.config.header_bytes + self._manifest_bytes(
            doc_id_bytes, num_chunks
        )

    def manifest_ack(self, doc_id_bytes: int, num_missing: int) -> int:
        """The successor's verdict plus the chunk indices it still needs."""
        return (
            self.config.header_bytes
            + 2 + doc_id_bytes
            + 1
            + self._CRC_BYTES * num_missing
        )

    def chunk_push(self, doc_id_bytes: int, data_bytes: int) -> int:
        """Ship one chunk to a successor."""
        return (
            self.config.header_bytes
            + 2 + doc_id_bytes
            + self._CHUNK_INDEX_BYTES
            + data_bytes
        )

    # -- analytics inventory (frequent-term mining; outside Table 2) --------

    _SKETCH_META_BYTES = 12  # origin (4) + epoch (8)
    _SKETCH_VERSION_BYTES = 12  # origin (4) + epoch (8)
    _COUNTER_BYTES = 8  # one u64 term/doc count

    @classmethod
    def sketch_entry_bytes(cls, entry: wire.SketchEntry) -> int:
        """Model size of one per-origin sketch entry."""
        return (
            cls._SKETCH_META_BYTES
            + sum(
                2 + len(term.encode("utf-8")) + cls._COUNTER_BYTES
                for term, _ in entry.terms
            )
            + sum(
                2 + len(doc.encode("utf-8")) + cls._COUNTER_BYTES
                for doc, _ in entry.docs
            )
        )

    def sketch_exchange(self, entries_bytes: int, num_versions: int) -> int:
        """Push-pull sketch exchange: entries plus an (origin, epoch) digest."""
        return (
            self.config.header_bytes
            + entries_bytes
            + self._SKETCH_VERSION_BYTES * num_versions
        )

    def sketch_reply(self, entries_bytes: int, num_versions: int) -> int:
        """The responder's missing entries plus its own digest."""
        return self.sketch_exchange(entries_bytes, num_versions)

    def top_terms_request(self) -> int:
        """Poll a node's converged community top-k estimate."""
        return self.config.header_bytes + 2

    def top_terms_reply(self, terms_bytes: int) -> int:
        """The node's current top-k terms with estimated counts."""
        return self.config.header_bytes + 4 + terms_bytes

    def browse_request(self, path_bytes: int) -> int:
        """List one namespace directory, popularity-ranked."""
        return self.config.header_bytes + 2 + path_bytes + 2

    def browse_response(self, path_bytes: int, entries_bytes: int) -> int:
        """A popularity-ordered listing plus its directory generation."""
        return self.config.header_bytes + 1 + 2 + path_bytes + 8 + entries_bytes

    # -- shared-inventory dispatch ------------------------------------------

    def model_size(self, msg: object) -> int:
        """Table-2 model size for one :mod:`repro.gossip.wire` message.

        This is the bridge between the two views of the inventory: the
        real codec encodes the message's contents, this method prices the
        same object under the simulator's byte model, and the validation
        suite holds the two within a factor of two of each other.
        """
        if isinstance(msg, wire.RumorPush):
            return self.rumor_push(len(msg.rids))
        if isinstance(msg, wire.RumorReply):
            return self.rumor_reply(len(msg.needed), len(msg.piggyback))
        if isinstance(msg, wire.RumorData):
            return self.rumor_data(sum(len(r.payload) for r in msg.rumors))
        if isinstance(msg, wire.AERequest):
            return self.ae_request()
        if isinstance(msg, wire.AENothing):
            return self.ae_nothing()
        if isinstance(msg, wire.AERecent):
            return self.ae_recent(len(msg.rids))
        if isinstance(msg, wire.AESummary):
            return self.ae_summary(len(msg.entries))
        if isinstance(msg, wire.PullRequest):
            return self.pull_request(len(msg.rids))
        if isinstance(msg, wire.JoinRequest):
            return self.join_request(len(msg.bloom))
        if isinstance(msg, wire.JoinSnapshot):
            # Per-member filters may differ in size; sum them exactly
            # rather than assuming the uniform-size special case.
            return self.config.header_bytes + sum(
                self.config.peer_summary_bytes + len(entry.bloom)
                for entry in msg.entries
            )
        if isinstance(msg, wire.SubscribeRequest):
            return self.subscribe_request(
                sum(2 + len(t.encode("utf-8")) for t in msg.terms) + 2,
                len(msg.notify_address.encode("utf-8")),
            )
        if isinstance(msg, wire.SubscribeAck):
            return self.subscribe_ack(len(msg.message.encode("utf-8")))
        if isinstance(msg, wire.Notify):
            return self.notify(
                len(msg.doc_id.encode("utf-8")), len(msg.text.encode("utf-8"))
            )
        if isinstance(msg, wire.Unsubscribe):
            return self.unsubscribe()
        if isinstance(msg, wire.ShardSummaryRequest):
            return self.shard_summary_request(len(msg.shards), len(msg.known))
        if isinstance(msg, wire.ShardSummaryReply):
            return self.shard_summary_reply(
                [len(entry.bloom) for entry in msg.entries],
                [len(member.bloom) for member in msg.members],
            )
        if isinstance(msg, wire.ViewExchange):
            return self.view_exchange(len(msg.records))
        if isinstance(msg, wire.ShardMatchQuery):
            return self.shard_match_query(
                sum(2 + len(t.encode("utf-8")) for t in msg.terms) + 2
            )
        if isinstance(msg, wire.ShardMatchResponse):
            return self.shard_match_response(len(msg.hits))
        if isinstance(msg, wire.ManifestRequest):
            return self.manifest_request(len(msg.doc_id.encode("utf-8")))
        if isinstance(msg, wire.ManifestReply):
            holder_bytes = sum(
                2 + len(h.encode("utf-8")) for h in msg.holders
            ) + 4
            if msg.manifest is None:
                return self.config.header_bytes + 1 + holder_bytes
            return self.manifest_reply(
                len(msg.manifest.doc_id.encode("utf-8")),
                msg.manifest.num_chunks,
                holder_bytes,
            )
        if isinstance(msg, wire.ChunkRequest):
            return self.chunk_request(len(msg.doc_id.encode("utf-8")))
        if isinstance(msg, wire.ChunkReply):
            return self.chunk_reply(len(msg.doc_id.encode("utf-8")), len(msg.data))
        if isinstance(msg, wire.ManifestPush):
            return self.manifest_push(
                len(msg.manifest.doc_id.encode("utf-8")),
                msg.manifest.num_chunks,
            )
        if isinstance(msg, wire.ManifestAck):
            return self.manifest_ack(
                len(msg.doc_id.encode("utf-8")), len(msg.missing)
            )
        if isinstance(msg, wire.ChunkPush):
            return self.chunk_push(len(msg.doc_id.encode("utf-8")), len(msg.data))
        if isinstance(msg, wire.SketchExchange):
            return self.sketch_exchange(
                sum(self.sketch_entry_bytes(e) for e in msg.entries),
                len(msg.versions),
            )
        if isinstance(msg, wire.SketchReply):
            return self.sketch_reply(
                sum(self.sketch_entry_bytes(e) for e in msg.entries),
                len(msg.versions),
            )
        if isinstance(msg, wire.TopTermsRequest):
            return self.top_terms_request()
        if isinstance(msg, wire.TopTermsReply):
            return self.top_terms_reply(
                sum(
                    2 + len(term.encode("utf-8")) + self._COUNTER_BYTES
                    for term, _ in msg.entries
                )
            )
        if isinstance(msg, wire.BrowseRequest):
            return self.browse_request(len(msg.path.encode("utf-8")))
        if isinstance(msg, wire.BrowseResponse):
            return self.browse_response(
                len(msg.path.encode("utf-8")),
                sum(
                    2 + len(doc.encode("utf-8"))
                    + 2 + len(link.encode("utf-8"))
                    + 8
                    for doc, link, _ in msg.entries
                ),
            )
        raise TypeError(f"not a gossip wire message: {type(msg).__name__}")
