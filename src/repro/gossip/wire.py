"""Message *contents* for the gossip protocol: the shared wire inventory.

The simulator costs messages with :class:`~repro.gossip.messages.MessageSizer`
(Table 2's byte model) while the real network layer (:mod:`repro.net`)
encodes them into actual frames.  Both views work from the dataclasses in
this module, so the inventory exists exactly once: every message type the
sizer models is a class here, and the codec round-trips precisely these
classes.  ``MessageSizer.model_size`` dispatches on them, and
``tests/test_net_model_agreement.py`` asserts the codec's real encodings
stay within 2x of the model for the whole inventory.

The protocol exchanges (paper Section 3, mirrored from
:mod:`repro.gossip.simpeer`) map onto request/response pairs:

=================  =====================================================
``RumorPush``      x announces its active rumor ids; answered by
``RumorReply``     which ids y needs + the partial-AE piggyback
``RumorData``      x ships the needed rumor payloads (answered by an ack)
``AERequest``      x sends its directory digest; answered by
``AENothing``      digests matched, or
``AERecent``       y's recently-learned rumor ids (cheap first level)
``PullRequest``    request payloads by id — or, with no ids, the full
``AESummary``      directory summary (proportional to community size)
``JoinRequest``    a joiner introduces itself (record + Bloom filter)
``JoinSnapshot``   the bootstrap's full directory download
=================  =====================================================

Beyond the gossip exchanges, the **serve inventory** carries persistent
queries (paper Section 5.1) over the wire — a standing conjunctive query
a remote client posts once, then receives upcalls for as matching
documents are published anywhere in the community:

====================  =================================================
``SubscribeRequest``  post a standing query, naming the address the
                      upcalls should be delivered to
``SubscribeAck``      the serving node's verdict + assigned id
``Notify``            one upcall: a newly published matching document
``Unsubscribe``       deregister a standing query by id
====================  =================================================

Serve messages are priced by ``MessageSizer.model_size`` too (held to
the same 2x envelope), but they live in :data:`SERVE_MESSAGES`, not
:data:`GOSSIP_MESSAGES` — the Table-2 gossip cost model stays exactly
the paper's inventory.

The **partial-view inventory** (:mod:`repro.gossip.partialview`) carries
the sharded-directory mode's maintenance and query fan-out:

=======================  ==============================================
``ShardSummaryRequest``  ask a peer for shard summary filters (and,
                         optionally, full member entries per shard)
``ShardSummaryReply``    per-shard OR-summaries + requested members
``ViewExchange``         trade bounded random membership-record samples
``ShardMatchQuery``      ask a shard member which of its peers hit terms
``ShardMatchResponse``   per-peer term-hit bitmasks for that shard
=======================  ==============================================

Like serve messages these are priced to the same 2x envelope but live in
:data:`PARTIALVIEW_MESSAGES`, outside the Table-2 gossip model.

The **content inventory** (:mod:`repro.content`) moves document *bytes*
peer to peer — chunked transfers with per-chunk CRCs plus the k-way
replication push that keeps content retrievable through churn:

=====================  ================================================
``ManifestRequest``    ask a peer for a document's manifest
``ManifestReply``      the manifest (chunk CRCs + whole-document
                       digest) plus the replica addresses to fetch from
``ChunkRequest``       fetch one chunk, resumable from a byte offset
``ChunkReply``         the chunk bytes from that offset (possibly a
                       prefix — the requester re-asks from where the
                       last reply stopped)
``ManifestPush``       a holder offers a document to a ring successor
``ManifestAck``        the successor's verdict + which chunks it still
                       needs (empty = complete, replica confirmed)
``ChunkPush``          ship one chunk to a successor (``ManifestAck``'d)
=====================  ================================================

Same 2x pricing envelope, grouped in :data:`CONTENT_MESSAGES`, outside
the Table-2 gossip model.

The **analytics inventory** (:mod:`repro.analytics`) piggybacks mergeable
term/access sketches on gossip rounds and serves the popularity-ranked
browse plane built on them:

=====================  ================================================
``SketchExchange``     push sketch entries + advertise the sender's
                       per-origin epoch digest (anti-entropy for the
                       community-wide frequent-term estimate)
``SketchReply``        entries the responder believes the sender lacks,
                       plus the responder's own epoch digest
``TopTermsRequest``    ask a node for its converged top-k term estimate
``TopTermsReply``      the estimate: (term, community count) pairs
``BrowseRequest``      popularity-ranked listing of one query-named
                       namespace directory, from the node's local index
``BrowseResponse``     the listing + the directory generation it was
                       computed against
=====================  ================================================

Same 2x pricing envelope, grouped in :data:`ANALYTICS_MESSAGES`, outside
the Table-2 gossip model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gossip.rumor import RumorKind

__all__ = [
    "PeerRecord",
    "WireRumor",
    "SnapshotEntry",
    "RumorPush",
    "RumorReply",
    "RumorData",
    "AERequest",
    "AENothing",
    "AERecent",
    "AESummary",
    "PullRequest",
    "JoinRequest",
    "JoinSnapshot",
    "GOSSIP_MESSAGES",
    "SubscribeRequest",
    "SubscribeAck",
    "Notify",
    "Unsubscribe",
    "SERVE_MESSAGES",
    "ShardSummaryEntry",
    "ShardSummaryRequest",
    "ShardSummaryReply",
    "ViewExchange",
    "ShardMatchQuery",
    "ShardMatchResponse",
    "PARTIALVIEW_MESSAGES",
    "ContentManifest",
    "ManifestRequest",
    "ManifestReply",
    "ChunkRequest",
    "ChunkReply",
    "ManifestPush",
    "ManifestAck",
    "ChunkPush",
    "CONTENT_MESSAGES",
    "SketchEntry",
    "SketchExchange",
    "SketchReply",
    "TopTermsRequest",
    "TopTermsReply",
    "BrowseRequest",
    "BrowseResponse",
    "ANALYTICS_MESSAGES",
]


@dataclass(frozen=True)
class PeerRecord:
    """One member's row of the replicated directory, as gossiped.

    The paper budgets :data:`~repro.constants.PEER_SUMMARY_BYTES` (48 B)
    per record; the codec packs it as id, flags, filter version, and a
    length-prefixed ``host:port`` address.
    """

    peer_id: int
    address: str
    online: bool
    filter_version: int


@dataclass(frozen=True)
class WireRumor:
    """One gossiped event with its real payload bytes.

    The simulation's :class:`~repro.gossip.rumor.Rumor` carries a payload
    *size*; on the wire the payload is the actual data — a member record
    plus compressed Bloom filter for JOIN/REJOIN, a Golomb-coded filter
    diff for BF_UPDATE.
    """

    rid: int
    kind: RumorKind
    origin: int
    created_at: float
    payload: bytes


@dataclass(frozen=True)
class SnapshotEntry:
    """One member in a join snapshot: its record plus compressed filter."""

    record: PeerRecord
    bloom: bytes


@dataclass(frozen=True)
class RumorPush:
    """x announces the ids of its actively-spread rumors."""

    rids: tuple[int, ...]


@dataclass(frozen=True)
class RumorReply:
    """y answers which ids it needs, piggybacking partial-AE ids."""

    needed: tuple[int, ...]
    piggyback: tuple[int, ...]


@dataclass(frozen=True)
class RumorData:
    """x ships the needed rumor payloads."""

    rumors: tuple[WireRumor, ...]


@dataclass(frozen=True)
class AERequest:
    """x asks y for reconciliation, sending its own directory digest."""

    digest: int


@dataclass(frozen=True)
class AENothing:
    """Digests matched (also used as the bare acknowledgement frame)."""


@dataclass(frozen=True)
class AERecent:
    """Cheap reconciliation: y's recently-learned rumor ids, plus how many
    rumors y knows in total so x can detect divergence beyond the window."""

    rids: tuple[int, ...]
    known_count: int


@dataclass(frozen=True)
class AESummary:
    """y's full directory summary: member records plus every known rumor id
    (proportional to community size — the costly fallback level)."""

    entries: tuple[PeerRecord, ...]
    rids: tuple[int, ...]


@dataclass(frozen=True)
class PullRequest:
    """Request specific rumor payloads by id; an empty id list requests
    the full directory summary instead (the sim's ``pull_request(0)``)."""

    rids: tuple[int, ...]


@dataclass(frozen=True)
class JoinRequest:
    """A new member introduces itself to its bootstrap peer.

    Carries everything the bootstrap needs to mint the joiner's JOIN
    rumor: the joiner-assigned rumor id, its record, and its compressed
    Bloom filter.
    """

    record: PeerRecord
    bloom: bytes
    rid: int
    created_at: float


@dataclass(frozen=True)
class JoinSnapshot:
    """Full directory download for a new member: every member's record and
    filter (the 16 MB-for-1000-peers case of Section 7.2) plus the known
    rumor-id set so the joiner's digest converges."""

    entries: tuple[SnapshotEntry, ...]
    rids: tuple[int, ...]


#: The full gossip inventory, in protocol order — what the sizer models
#: and the codec must round-trip.
GOSSIP_MESSAGES: tuple[type, ...] = (
    RumorPush,
    RumorReply,
    RumorData,
    AERequest,
    AENothing,
    AERecent,
    AESummary,
    PullRequest,
    JoinRequest,
    JoinSnapshot,
)


# ---------------------------------------------------------------------------
# serve inventory: persistent queries over the wire (paper Section 5.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubscribeRequest:
    """A client posts a standing conjunctive query to a serving node.

    ``sub_id`` 0 asks the server to assign a fresh id; a nonzero id
    reattaches to (or updates) an existing subscription — the client's
    handle after a reconnect, carrying a possibly-new notify address.
    """

    sub_id: int
    terms: tuple[str, ...]
    #: ``host:port`` the client is serving upcalls on.
    notify_address: str
    created_at: float


@dataclass(frozen=True)
class SubscribeAck:
    """The serving node's verdict: the (possibly freshly assigned) id,
    whether the subscription was accepted, and a reason when not."""

    sub_id: int
    accepted: bool
    message: str


@dataclass(frozen=True)
class Notify:
    """One upcall: a newly published document matching a standing query.

    Sent from the serving node to the subscriber's notify address;
    acknowledged with a bare ``AENothing`` frame.  ``origin`` is the
    publishing peer's id; ``text`` travels as a u32 blob so documents
    larger than 64 KiB survive the trip.
    """

    sub_id: int
    origin: int
    doc_id: str
    text: str


@dataclass(frozen=True)
class Unsubscribe:
    """Deregister a standing query by id (acknowledged with ``SubscribeAck``)."""

    sub_id: int


#: The serve inventory — persistent-query RPCs, priced by the sizer but
#: deliberately NOT part of the Table-2 gossip model.
SERVE_MESSAGES: tuple[type, ...] = (
    SubscribeRequest,
    SubscribeAck,
    Notify,
    Unsubscribe,
)


# ---------------------------------------------------------------------------
# partial-view inventory: sharded-directory maintenance and query fan-out
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShardSummaryEntry:
    """One shard's coarse summary: the compressed OR of its member
    filters, the responder's census of the shard, and a freshness
    version (component of :class:`ShardSummaryReply`, not a message).

    With ``diff=True`` the ``bloom`` field carries a serialized
    :class:`~repro.bloom.diff.BloomDiff` — only the positions set since
    the summary token the requester advertised — instead of the full
    compressed filter.  Diffs are monotone position sets, so a receiver
    OR-ing one in can never lose bits.
    """

    shard: int
    member_count: int
    version: int
    bloom: bytes
    diff: bool = False


@dataclass(frozen=True)
class ShardSummaryRequest:
    """Ask a peer for shard summaries.

    An empty ``shards`` tuple requests every shard the responder can
    speak for.  ``want_members=True`` additionally requests the full
    member entries (record + compressed filter) the responder holds for
    the named shards — the bootstrap/backfill path a joiner (or the
    survivor of a shard member's death) uses to learn its home shard's
    full filters.

    ``known`` advertises the requester's current ``(shard, token)``
    summary fingerprints.  A token is a content hash of the summary's
    set-bit positions; when the responder's recent history contains the
    advertised token it answers with a position *diff* instead of the
    full compressed bloom, and falls back to the full bloom on any
    mismatch.
    """

    shards: tuple[int, ...]
    want_members: bool
    known: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class ShardSummaryReply:
    """Per-shard summaries plus any requested full member entries."""

    entries: tuple[ShardSummaryEntry, ...]
    members: tuple[SnapshotEntry, ...]


@dataclass(frozen=True)
class ViewExchange:
    """Trade bounded random samples of membership records.

    Serves as both request and reply: the initiator sends a sample of
    its directory records and asks for up to ``want`` in return; the
    responder answers with its own sample and ``want=0``.  Keeps every
    node's *record* view complete under partial filters, cheaply —
    records are ~30 bytes against a filter's kilobytes.
    """

    records: tuple[PeerRecord, ...]
    want: int


@dataclass(frozen=True)
class ShardMatchQuery:
    """Ask a member of ``shard`` which of that shard's peers may hold
    the query terms — the fine-grained second hop after shard summaries
    nominated the shard."""

    shard: int
    terms: tuple[str, ...]


@dataclass(frozen=True)
class ShardMatchResponse:
    """Per-peer term-hit bitmasks for one shard: ``hits[i] = (pid,
    mask)`` where bit ``t`` of ``mask`` is set iff the responder's copy
    of ``pid``'s filter may contain query term ``t``."""

    shard: int
    hits: tuple[tuple[int, int], ...]


#: The partial-view inventory — sharded-directory RPCs, priced by the
#: sizer but NOT part of the Table-2 gossip model.
PARTIALVIEW_MESSAGES: tuple[type, ...] = (
    ShardSummaryRequest,
    ShardSummaryReply,
    ViewExchange,
    ShardMatchQuery,
    ShardMatchResponse,
)


# ---------------------------------------------------------------------------
# content inventory: chunked transfers and k-way replication pushes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ContentManifest:
    """A document's transfer contract (component, not a message).

    ``digest`` is the SHA-256 of the whole document; ``chunk_crcs[i]``
    is the CRC-32 of chunk ``i`` (every chunk is ``chunk_size`` bytes
    except a possibly-shorter final one), so a receiver can verify each
    chunk on arrival and the assembled bytes at the end.  ``origin`` is
    the publishing peer — the one node that never garbage-collects its
    copy during replica handoff.
    """

    doc_id: str
    origin: int
    total_size: int
    chunk_size: int
    digest: bytes
    chunk_crcs: tuple[int, ...]

    @property
    def num_chunks(self) -> int:
        return len(self.chunk_crcs)


@dataclass(frozen=True)
class ManifestRequest:
    """Ask a peer for ``doc_id``'s manifest (and where its replicas live)."""

    doc_id: str


@dataclass(frozen=True)
class ManifestReply:
    """The manifest when the responder can resolve the id.

    ``holders`` are ``host:port`` addresses the responder believes hold
    the chunks (the ring replica set, plus the origin when known) — what
    lets a directory-less client (the CLI ``get`` subcommand) reach the
    replica set through any single live member.
    """

    found: bool
    manifest: ContentManifest | None
    holders: tuple[str, ...]


@dataclass(frozen=True)
class ChunkRequest:
    """Fetch chunk ``index`` of ``doc_id`` starting at byte ``offset``.

    ``offset`` is what makes transfers resumable: after a dropped
    connection (or a responder that capped its reply) the client re-asks
    from the first byte it has not yet verified instead of refetching
    the whole chunk.
    """

    doc_id: str
    index: int
    offset: int


@dataclass(frozen=True)
class ChunkReply:
    """Bytes of one chunk from ``offset``; ``total`` is the chunk's full
    length so the requester knows whether ``data`` completes it or it
    must re-ask from ``offset + len(data)``."""

    found: bool
    doc_id: str
    index: int
    offset: int
    total: int
    data: bytes


@dataclass(frozen=True)
class ManifestPush:
    """A holder offers ``manifest`` to a ring successor for replication."""

    manifest: ContentManifest


@dataclass(frozen=True)
class ManifestAck:
    """The successor's verdict on a push.

    ``missing`` lists the chunk indices the acker still needs —
    empty-and-accepted means the replica holds a complete, CRC-verified
    copy (the pusher's signal to mark it confirmed).  ``accepted=False``
    means the acker has no manifest for ``doc_id`` (the pusher must
    (re)send ``ManifestPush`` before chunks).
    """

    doc_id: str
    accepted: bool
    missing: tuple[int, ...]


@dataclass(frozen=True)
class ChunkPush:
    """Ship one chunk to a successor (acknowledged with ``ManifestAck``)."""

    doc_id: str
    index: int
    data: bytes


#: The content inventory — chunked transfer + replication RPCs, priced
#: by the sizer but NOT part of the Table-2 gossip model.
CONTENT_MESSAGES: tuple[type, ...] = (
    ManifestRequest,
    ManifestReply,
    ChunkRequest,
    ChunkReply,
    ManifestPush,
    ManifestAck,
    ChunkPush,
)


# ---------------------------------------------------------------------------
# analytics inventory: gossiped term/access sketches and the browse plane
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SketchEntry:
    """One origin's contribution to the community term/access sketch
    (component of the sketch messages, not a message itself).

    ``terms`` is the origin's space-saving summary of its local term
    frequencies — ``(term, estimated count)`` pairs; ``docs`` is its
    per-document access counters fed by the serve and content planes.
    ``epoch`` makes the entry a last-writer-wins register: an origin
    bumps it whenever its local summary changes (including document
    removals), so stale counts age out of every replica as the newer
    epoch spreads.  Replicas keep, per origin, the entry with the
    largest ``(epoch, terms, docs)`` — a total order, so the merge is
    commutative, associative, and idempotent.
    """

    origin: int
    epoch: int
    terms: tuple[tuple[str, int], ...]
    docs: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class SketchExchange:
    """Anti-entropy push for the analytics sketch.

    ``entries`` are sketch entries the sender pushes outright (its own
    fresh entry, plus any it believes the target lacks); ``versions`` is
    the sender's ``(origin, epoch)`` digest, which lets the responder
    answer with exactly the entries the sender is behind on.  An empty
    ``versions`` tuple means "no digest — just merge the pushed entries"
    (the cheap second half of a push-pull round).
    """

    entries: tuple[SketchEntry, ...]
    versions: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class SketchReply:
    """The responder's half of a sketch exchange: entries the requester's
    digest showed it lacks, plus the responder's own digest so the
    requester can push back anything *it* is ahead on."""

    entries: tuple[SketchEntry, ...]
    versions: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class TopTermsRequest:
    """Ask a node for its current community-wide top-``k`` term estimate."""

    k: int


@dataclass(frozen=True)
class TopTermsReply:
    """The node's estimate: ``(term, estimated community count)`` pairs,
    most frequent first.  ``origin_count`` is how many distinct origins
    the node's merged sketch covers — a convergence signal."""

    origin_count: int
    entries: tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class BrowseRequest:
    """Popularity-ranked listing of one query-named namespace directory,
    computed from the responder's local index and merged sketch."""

    path: str
    k: int


@dataclass(frozen=True)
class BrowseResponse:
    """One directory listing: ``(doc_id, link, popularity)`` entries,
    most popular first.  ``generation`` is the responder's directory
    generation at listing time, so a poller can detect staleness, and
    ``found=False`` means the path was invalid or analytics is off."""

    found: bool
    path: str
    generation: int
    entries: tuple[tuple[str, str, int], ...]


#: The analytics inventory — sketch gossip + browse RPCs, priced by the
#: sizer but NOT part of the Table-2 gossip model.
ANALYTICS_MESSAGES: tuple[type, ...] = (
    SketchExchange,
    SketchReply,
    TopTermsRequest,
    TopTermsReply,
    BrowseRequest,
    BrowseResponse,
)
