"""Message *contents* for the gossip protocol: the shared wire inventory.

The simulator costs messages with :class:`~repro.gossip.messages.MessageSizer`
(Table 2's byte model) while the real network layer (:mod:`repro.net`)
encodes them into actual frames.  Both views work from the dataclasses in
this module, so the inventory exists exactly once: every message type the
sizer models is a class here, and the codec round-trips precisely these
classes.  ``MessageSizer.model_size`` dispatches on them, and
``tests/test_net_model_agreement.py`` asserts the codec's real encodings
stay within 2x of the model for the whole inventory.

The protocol exchanges (paper Section 3, mirrored from
:mod:`repro.gossip.simpeer`) map onto request/response pairs:

=================  =====================================================
``RumorPush``      x announces its active rumor ids; answered by
``RumorReply``     which ids y needs + the partial-AE piggyback
``RumorData``      x ships the needed rumor payloads (answered by an ack)
``AERequest``      x sends its directory digest; answered by
``AENothing``      digests matched, or
``AERecent``       y's recently-learned rumor ids (cheap first level)
``PullRequest``    request payloads by id — or, with no ids, the full
``AESummary``      directory summary (proportional to community size)
``JoinRequest``    a joiner introduces itself (record + Bloom filter)
``JoinSnapshot``   the bootstrap's full directory download
=================  =====================================================

Beyond the gossip exchanges, the **serve inventory** carries persistent
queries (paper Section 5.1) over the wire — a standing conjunctive query
a remote client posts once, then receives upcalls for as matching
documents are published anywhere in the community:

====================  =================================================
``SubscribeRequest``  post a standing query, naming the address the
                      upcalls should be delivered to
``SubscribeAck``      the serving node's verdict + assigned id
``Notify``            one upcall: a newly published matching document
``Unsubscribe``       deregister a standing query by id
====================  =================================================

Serve messages are priced by ``MessageSizer.model_size`` too (held to
the same 2x envelope), but they live in :data:`SERVE_MESSAGES`, not
:data:`GOSSIP_MESSAGES` — the Table-2 gossip cost model stays exactly
the paper's inventory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gossip.rumor import RumorKind

__all__ = [
    "PeerRecord",
    "WireRumor",
    "SnapshotEntry",
    "RumorPush",
    "RumorReply",
    "RumorData",
    "AERequest",
    "AENothing",
    "AERecent",
    "AESummary",
    "PullRequest",
    "JoinRequest",
    "JoinSnapshot",
    "GOSSIP_MESSAGES",
    "SubscribeRequest",
    "SubscribeAck",
    "Notify",
    "Unsubscribe",
    "SERVE_MESSAGES",
]


@dataclass(frozen=True)
class PeerRecord:
    """One member's row of the replicated directory, as gossiped.

    The paper budgets :data:`~repro.constants.PEER_SUMMARY_BYTES` (48 B)
    per record; the codec packs it as id, flags, filter version, and a
    length-prefixed ``host:port`` address.
    """

    peer_id: int
    address: str
    online: bool
    filter_version: int


@dataclass(frozen=True)
class WireRumor:
    """One gossiped event with its real payload bytes.

    The simulation's :class:`~repro.gossip.rumor.Rumor` carries a payload
    *size*; on the wire the payload is the actual data — a member record
    plus compressed Bloom filter for JOIN/REJOIN, a Golomb-coded filter
    diff for BF_UPDATE.
    """

    rid: int
    kind: RumorKind
    origin: int
    created_at: float
    payload: bytes


@dataclass(frozen=True)
class SnapshotEntry:
    """One member in a join snapshot: its record plus compressed filter."""

    record: PeerRecord
    bloom: bytes


@dataclass(frozen=True)
class RumorPush:
    """x announces the ids of its actively-spread rumors."""

    rids: tuple[int, ...]


@dataclass(frozen=True)
class RumorReply:
    """y answers which ids it needs, piggybacking partial-AE ids."""

    needed: tuple[int, ...]
    piggyback: tuple[int, ...]


@dataclass(frozen=True)
class RumorData:
    """x ships the needed rumor payloads."""

    rumors: tuple[WireRumor, ...]


@dataclass(frozen=True)
class AERequest:
    """x asks y for reconciliation, sending its own directory digest."""

    digest: int


@dataclass(frozen=True)
class AENothing:
    """Digests matched (also used as the bare acknowledgement frame)."""


@dataclass(frozen=True)
class AERecent:
    """Cheap reconciliation: y's recently-learned rumor ids, plus how many
    rumors y knows in total so x can detect divergence beyond the window."""

    rids: tuple[int, ...]
    known_count: int


@dataclass(frozen=True)
class AESummary:
    """y's full directory summary: member records plus every known rumor id
    (proportional to community size — the costly fallback level)."""

    entries: tuple[PeerRecord, ...]
    rids: tuple[int, ...]


@dataclass(frozen=True)
class PullRequest:
    """Request specific rumor payloads by id; an empty id list requests
    the full directory summary instead (the sim's ``pull_request(0)``)."""

    rids: tuple[int, ...]


@dataclass(frozen=True)
class JoinRequest:
    """A new member introduces itself to its bootstrap peer.

    Carries everything the bootstrap needs to mint the joiner's JOIN
    rumor: the joiner-assigned rumor id, its record, and its compressed
    Bloom filter.
    """

    record: PeerRecord
    bloom: bytes
    rid: int
    created_at: float


@dataclass(frozen=True)
class JoinSnapshot:
    """Full directory download for a new member: every member's record and
    filter (the 16 MB-for-1000-peers case of Section 7.2) plus the known
    rumor-id set so the joiner's digest converges."""

    entries: tuple[SnapshotEntry, ...]
    rids: tuple[int, ...]


#: The full gossip inventory, in protocol order — what the sizer models
#: and the codec must round-trip.
GOSSIP_MESSAGES: tuple[type, ...] = (
    RumorPush,
    RumorReply,
    RumorData,
    AERequest,
    AENothing,
    AERecent,
    AESummary,
    PullRequest,
    JoinRequest,
    JoinSnapshot,
)


# ---------------------------------------------------------------------------
# serve inventory: persistent queries over the wire (paper Section 5.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubscribeRequest:
    """A client posts a standing conjunctive query to a serving node.

    ``sub_id`` 0 asks the server to assign a fresh id; a nonzero id
    reattaches to (or updates) an existing subscription — the client's
    handle after a reconnect, carrying a possibly-new notify address.
    """

    sub_id: int
    terms: tuple[str, ...]
    #: ``host:port`` the client is serving upcalls on.
    notify_address: str
    created_at: float


@dataclass(frozen=True)
class SubscribeAck:
    """The serving node's verdict: the (possibly freshly assigned) id,
    whether the subscription was accepted, and a reason when not."""

    sub_id: int
    accepted: bool
    message: str


@dataclass(frozen=True)
class Notify:
    """One upcall: a newly published document matching a standing query.

    Sent from the serving node to the subscriber's notify address;
    acknowledged with a bare ``AENothing`` frame.  ``origin`` is the
    publishing peer's id; ``text`` travels as a u32 blob so documents
    larger than 64 KiB survive the trip.
    """

    sub_id: int
    origin: int
    doc_id: str
    text: str


@dataclass(frozen=True)
class Unsubscribe:
    """Deregister a standing query by id (acknowledged with ``SubscribeAck``)."""

    sub_id: int


#: The serve inventory — persistent-query RPCs, priced by the sizer but
#: deliberately NOT part of the Table-2 gossip model.
SERVE_MESSAGES: tuple[type, ...] = (
    SubscribeRequest,
    SubscribeAck,
    Notify,
    Unsubscribe,
)
