"""PlanetP's gossiping layer (paper Section 3).

The protocol is a combination of *rumor mongering* (push) and
*anti-entropy* (pull) after Demers et al., extended with the paper's novel
*partial anti-entropy* piggyback, an adaptive gossip interval, and an
optional bandwidth-aware peer-selection policy.  The package contains both
the protocol logic (:mod:`simpeer`) and the scenario runners that
reproduce the paper's gossip experiments (:mod:`simulation`).
"""

from repro.gossip.rumor import Rumor, RumorKind
from repro.gossip.directory import DirectoryView, mix_rumor_id, mix_rumor_ids
from repro.gossip.intervals import IntervalPolicy
from repro.gossip.messages import MessageSizer
from repro.gossip.wire import GOSSIP_MESSAGES, PeerRecord, WireRumor
from repro.gossip.bandwidth_aware import FlatSelector, BandwidthAwareSelector
from repro.gossip.simpeer import GossipPeer
from repro.gossip.simulation import (
    GossipSimulation,
    PropagationResult,
    JoinResult,
    DynamicResult,
    run_propagation,
    run_join,
    run_poisson_joins,
    run_churn,
)
from repro.gossip.validation import (
    ReplicaObserver,
    run_live_replication,
    wire_model_vs_real,
)

__all__ = [
    "Rumor",
    "RumorKind",
    "DirectoryView",
    "mix_rumor_id",
    "mix_rumor_ids",
    "IntervalPolicy",
    "MessageSizer",
    "GOSSIP_MESSAGES",
    "PeerRecord",
    "WireRumor",
    "FlatSelector",
    "BandwidthAwareSelector",
    "GossipPeer",
    "GossipSimulation",
    "PropagationResult",
    "JoinResult",
    "DynamicResult",
    "run_propagation",
    "run_join",
    "run_poisson_joins",
    "run_churn",
    "ReplicaObserver",
    "run_live_replication",
    "wire_model_vs_real",
]
