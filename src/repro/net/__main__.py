"""``python -m repro.net`` — launch a real PlanetP node."""

from repro.net.cli import main

if __name__ == "__main__":
    main()
