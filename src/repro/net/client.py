"""Async distributed search over the network (paper Section 5 over TCP).

Runs the same two search modes as :class:`~repro.core.community.
InProcessCommunity`, but the "contact a peer" step is a real RPC:

* **ranked** — rank members by eq. 3 over the node's *replicated* Bloom
  filters (reusing :func:`repro.ranking.tfipf.rank_peers`), then contact
  them best-first in groups, merging local top-k responses and stopping
  per the adaptive rule of :mod:`repro.ranking.stopping`.  Because the
  ranking, merge, and stopping logic are shared with the in-process
  implementation, a converged networked community returns the same top-k
  as :meth:`InProcessCommunity.ranked_search` on the same corpus.
* **exhaustive** — Section 5.1's conjunctive search against every
  candidate whose replicated filter hits all query terms.

Peers that fail to answer are marked offline in the node's directory
(never gossiped — Section 3) and contribute nothing to the result.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from repro.bloom.filter import BloomFilter
from repro.constants import RankingConfig
from repro.core.search import exhaustive_local_match, score_local_documents
from repro.gossip.wire import ShardMatchQuery, ShardMatchResponse
from repro.net import codec
from repro.net.codec import (
    SHARD_MATCH_MAX_TERMS,
    CodecError,
    ExhaustiveQuery,
    ExhaustiveResponse,
    RankedQuery,
    RankedResponse,
    SnippetFetch,
    SnippetResponse,
)
from repro.net.transport import TransportError

if TYPE_CHECKING:
    from repro.net.node import NetworkPeer
from repro.obs import DEFAULT_COUNT_BOUNDS
from repro.ranking.stopping import AdaptiveStopping, StoppingPolicy
from repro.ranking.tfidf import RankedDoc
from repro.ranking.tfipf import DistributedSearchResult, TFIPFSearch, rank_peers
from repro.text.document import Document

__all__ = ["NetworkSearchClient", "PeerGateLike"]


class PeerGateLike(Protocol):
    """Anything handing out per-peer semaphores (``repro.serve.PeerGate``)."""

    def slot(self, pid: int) -> asyncio.Semaphore:
        """The in-flight cap for RPCs targeting ``pid``."""
        ...


class _ReplicaBackend:
    """Adapts a node's replicated directory to the ranking functions.

    Only the directory-local half of the :class:`~repro.ranking.tfipf.
    PeerBackend` protocol is needed (peer ids + filters); the actual
    contacting happens over the transport.
    """

    def __init__(self, node: NetworkPeer) -> None:
        self.node = node

    def online_peer_ids(self) -> list[int]:
        """Members whose replicated entries are usable for ranking."""
        ids = []
        for pid, entry in self.node.peer.directory.items():
            if pid == self.node.peer_id or (
                entry.online and entry.bloom_filter is not None
            ):
                ids.append(pid)
        return sorted(ids)

    def peer_filter(self, pid: int) -> BloomFilter:
        """The replicated filter (our own live filter for ourselves)."""
        if pid == self.node.peer_id:
            return self.node.peer.store.bloom_filter
        bf = self.node.peer.directory[pid].bloom_filter
        assert bf is not None  # online_peer_ids filtered for this
        return bf

    def filter_hit_matrix(self, terms: Sequence[str]):
        """Batched peer × term membership over the replicated directory
        (hash the query once, one vectorized gather for all members)."""
        ids = self.online_peer_ids()
        peers, hits = self.node.peer.directory_matrix().hit_matrix(terms)
        row_of = {pid: i for i, pid in enumerate(peers)}
        return ids, hits[[row_of[pid] for pid in ids]]


class _PrecomputedBackend:
    """A ranking backend over a peer × term hit matrix assembled by the
    partial-view shard fan-out (local held rows + remote shard answers).

    Exposes just what :func:`~repro.ranking.tfipf.rank_peers` consumes,
    so the eq. 3 scoring, IPF computation, and ranking order stay the
    shared implementation in both directory modes.
    """

    def __init__(self, peer_ids: list[int], hits: np.ndarray) -> None:
        self._peer_ids = peer_ids
        self._hits = hits

    def online_peer_ids(self) -> list[int]:
        return list(self._peer_ids)

    def filter_hit_matrix(self, terms: Sequence[str]) -> tuple[list[int], np.ndarray]:
        return list(self._peer_ids), self._hits


class NetworkSearchClient:
    """Issues distributed searches from one :class:`NetworkPeer`."""

    def __init__(
        self,
        node: NetworkPeer,
        stopping: StoppingPolicy | None = None,
        ranking_config: RankingConfig | None = None,
        group_size: int | None = None,
        *,
        fanout_limit: int | None = None,
        peer_deadline_s: float | None = None,
        peer_gate: PeerGateLike | None = None,
    ) -> None:
        self.node = node
        self.ranking_config = ranking_config or RankingConfig()
        self.stopping = stopping or AdaptiveStopping(self.ranking_config)
        self.group_size = group_size or self.ranking_config.group_size
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if fanout_limit is not None and fanout_limit < 1:
            raise ValueError("fanout_limit must be >= 1")
        if peer_deadline_s is not None and peer_deadline_s <= 0:
            raise ValueError("peer_deadline_s must be positive")
        #: cap on this client's concurrent in-flight RPCs (None = follow
        #: group_size / candidate count, the historical behavior).
        self.fanout_limit = fanout_limit
        self._fanout = (
            asyncio.Semaphore(fanout_limit) if fanout_limit is not None else None
        )
        #: per-RPC deadline: a peer slower than this is treated as a
        #: failed contact instead of holding its whole wave (None = wait
        #: out the transport's own retry deadline).
        self.peer_deadline_s = peer_deadline_s
        #: shared per-peer in-flight caps (``repro.serve.PeerGate``).
        self.peer_gate = peer_gate
        self._backend = _ReplicaBackend(node)
        #: searches record into the node's registry (component ``client``).
        self.obs = node.obs

    # -- ranked search -------------------------------------------------------

    async def ranked_search(self, query: str, k: int = 20) -> DistributedSearchResult:
        """Section 5.2 over the wire: rank by replicated filters, contact
        best-first in groups of ``group_size``, stop adaptively."""
        if k <= 0:
            raise ValueError("k must be positive")
        terms = self.node.analyzer.analyze_query(query)
        if not terms:
            raise ValueError("query analyzed to zero terms")
        if self.node.pview is not None:
            ranking, ipf, pool = await self._rank_via_shards(terms)
        else:
            ranking, ipf = rank_peers(terms, self._backend)
            pool = len(self._backend.online_peer_ids())
        self.stopping.reset(pool, k)
        self.obs.counter("client", "queries_total", "ranked searches issued").inc()
        wave_latency = self.obs.histogram(
            "client", "wave_latency_seconds", "per-contact-wave round-trip time"
        )

        top: dict[str, float] = {}
        contacted: list[int] = []
        stopped_early = False
        for wave, start in enumerate(range(0, len(ranking), self.group_size)):
            group = ranking[start : start + self.group_size]
            self.obs.emit(
                "search_wave",
                peer=self.node.peer_id,
                wave=wave,
                targets=[pid for pid, _r in group],
            )
            wave_started = self.node.clock()
            responses = await asyncio.gather(
                *(self._query_peer(pid, terms, ipf, k) for pid, _r in group)
            )
            wave_latency.observe(max(0.0, self.node.clock() - wave_started))
            for (pid, _r), returned in zip(group, responses):
                contacted.append(pid)
                contributed = TFIPFSearch._merge(top, returned, k)
                self.stopping.observe(contributed, len(top))
            if self.stopping.should_stop():
                stopped_early = start + self.group_size < len(ranking)
                break

        self.obs.counter(
            "client", "peers_contacted_total", "peers contacted across queries"
        ).inc(len(contacted))
        self.obs.histogram(
            "client",
            "peers_per_query",
            "contact fan-out per ranked search",
            bounds=DEFAULT_COUNT_BOUNDS,
        ).observe(len(contacted))
        self.obs.counter(
            "client",
            "stopped_early_total" if stopped_early else "ranking_exhausted_total",
            "adaptive-stopping decisions",
        ).inc()

        ordered = sorted(top.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        return DistributedSearchResult(
            results=[RankedDoc(d, s) for d, s in ordered],
            peers_contacted=contacted,
            peer_ranking=ranking,
            ipf=ipf,
        )

    async def _query_peer(
        self, pid: int, terms: Sequence[str], ipf: dict[str, float], k: int
    ) -> list[RankedDoc]:
        if pid == self.node.peer_id:
            return score_local_documents(self.node.peer.store.index, terms, ipf, k)
        msg = RankedQuery(tuple(terms), tuple(ipf.items()), k)
        reply = await self._rpc(pid, msg)
        if not isinstance(reply, RankedResponse):
            return []
        return [RankedDoc(doc_id, score) for doc_id, score in reply.results]

    # -- partial-view fan-out -----------------------------------------------

    async def _rank_via_shards(
        self, terms: Sequence[str]
    ) -> tuple[list[tuple[int, float]], dict[str, float], int]:
        """Eq. 3 ranking under a partial view: held rows answer locally,
        shard summaries nominate the foreign shards worth asking, and a
        :class:`~repro.gossip.wire.ShardMatchQuery` per nominated shard
        fetches that shard's per-peer term hits.  Returns the ranking,
        the IPF map, and the candidate pool size for adaptive stopping.
        """
        node = self.node
        pview = node.pview
        assert pview is not None
        term_list = list(dict.fromkeys(terms))
        node._pview_sync()
        local_ids, local_hits = pview.matrix.hit_matrix(term_list)
        rows = {pid: local_hits[i] for i, pid in enumerate(local_ids)}
        shards = self._fanout_shards(pview.matrix.candidate_shards(term_list))
        self.obs.counter(
            "client", "shard_fanouts_total", "foreign shards asked per search"
        ).inc(len(shards))
        remote = await self._shard_fanout(shards, term_list)
        for pid, row in remote.items():
            if pid not in rows:  # a held full filter beats a relayed answer
                rows[pid] = row
        # Every directory member is a candidate row (zeros where nothing
        # is known) so IPF's N matches the flat mode's community size.
        ids = sorted(
            pid
            for pid, entry in node.peer.directory.items()
            if pid == node.peer_id or entry.online
        )
        hits = np.zeros((len(ids), len(term_list)), dtype=bool)
        for i, pid in enumerate(ids):
            row = rows.get(pid)
            if row is not None:
                hits[i] = row
        ranking, ipf = rank_peers(term_list, _PrecomputedBackend(ids, hits))
        return ranking, ipf, len(ids)

    def _fanout_shards(self, nominated: Sequence[int]) -> list[int]:
        """Which foreign shards a search must actually contact.

        ``nominated`` comes from the summary rows (shards whose OR-ed
        filter may hit).  Two corrections preserve the flat directory's
        no-false-negative guarantee during warm-up:

        * shards we hold no summary for yet are asked unconditionally
          (a missing summary is no evidence the shard is empty), and
        * the home shard — normally answered from first-class local
          rows — is asked like any other shard while some home member's
          full filter has not arrived (fresh join, pre-backfill).
        """
        node = self.node
        pview = node.pview
        assert pview is not None
        shards = {s for s in nominated if s != pview.home}
        shards.update(pview.unknown_shards())
        if any(
            entry.online
            and entry.bloom_filter is None
            and pview.shard_of(pid) == pview.home
            for pid, entry in node.peer.directory.items()
            if pid != node.peer_id
        ):
            shards.add(pview.home)
        return sorted(shards)

    async def _shard_fanout(
        self, shards: Sequence[int], terms: Sequence[str]
    ) -> dict[int, np.ndarray]:
        """Ask one member of each shard (with a one-member fallback) for
        its peers' term hits; returns ``{pid: bool row over terms}``."""
        node = self.node
        pview = node.pview
        assert pview is not None
        members: dict[int, list[int]] = {}
        for pid, entry in node.peer.directory.items():
            if pid == node.peer_id or not entry.address:
                continue
            members.setdefault(pview.shard_of(pid), []).append(pid)

        async def ask(shard: int) -> dict[int, np.ndarray]:
            # Online members first; a dead first target falls through to
            # the runner-up instead of losing the whole shard.
            pool = sorted(
                members.get(shard, ()),
                key=lambda pid: (not node.peer.directory[pid].online, pid),
            )[:2]
            rows: dict[int, np.ndarray] = {}
            for start in range(0, len(terms), SHARD_MATCH_MAX_TERMS):
                chunk = terms[start : start + SHARD_MATCH_MAX_TERMS]
                for pid in pool:
                    reply = await self._rpc(pid, ShardMatchQuery(shard, tuple(chunk)))
                    if (
                        isinstance(reply, ShardMatchResponse)
                        and reply.shard == shard
                    ):
                        for hit_pid, mask in reply.hits:
                            row = rows.get(hit_pid)
                            if row is None:
                                row = rows[hit_pid] = np.zeros(
                                    len(terms), dtype=bool
                                )
                            for t in range(len(chunk)):
                                if (mask >> t) & 1:
                                    row[start + t] = True
                        break
            return rows

        merged: dict[int, np.ndarray] = {}
        for shard_rows in await asyncio.gather(*(ask(s) for s in shards)):
            for pid, row in shard_rows.items():
                held = merged.get(pid)
                if held is None:
                    merged[pid] = row
                else:
                    held |= row
        return merged

    async def _exhaustive_candidates(self, terms: Sequence[str]) -> list[int]:
        """Partial-view candidate set for Section 5.1: held rows matched
        locally, plus foreign-shard peers whose relayed rows hit every
        term (summaries are false-negative-free, so no candidate whose
        filter would match under the flat directory is ever skipped)."""
        node = self.node
        pview = node.pview
        assert pview is not None
        node._pview_sync()
        candidates = set(pview.matrix.match_all_terms(terms))
        shards = self._fanout_shards(
            pview.matrix.candidate_shards(terms, all_terms=True)
        )
        remote = await self._shard_fanout(shards, terms)
        held = set(pview.matrix.peer_ids)
        candidates.update(
            pid for pid, row in remote.items() if pid not in held and row.all()
        )
        return sorted(candidates)

    # -- exhaustive search --------------------------------------------------

    async def exhaustive_search(self, query: str) -> list[str]:
        """Section 5.1 over the wire: contact every candidate whose
        replicated filter may match all terms; return sorted doc ids."""
        terms = self.node.analyzer.analyze_query(query)
        if not terms:
            return []
        results: set[str] = set()
        if self.node.pview is not None:
            candidates = await self._exhaustive_candidates(terms)
        else:
            candidates = self.node.peer.candidate_peers(terms)
        if self.node.peer_id in candidates:
            results.update(exhaustive_local_match(self.node.peer.store.index, terms))
        remote = [pid for pid in candidates if pid != self.node.peer_id]
        self.obs.counter(
            "client", "exhaustive_queries_total", "exhaustive searches issued"
        ).inc()
        self.obs.counter(
            "client", "peers_contacted_total", "peers contacted across queries"
        ).inc(len(remote))
        replies = await asyncio.gather(
            *(self._rpc(pid, ExhaustiveQuery(tuple(terms))) for pid in remote)
        )
        for reply in replies:
            if isinstance(reply, ExhaustiveResponse):
                results.update(reply.doc_ids)
        return sorted(results)

    # -- document retrieval -------------------------------------------------

    async def fetch(self, owner: int, doc_id: str) -> Document | None:
        """Retrieve one document's content from the peer that owns it."""
        if owner == self.node.peer_id:
            try:
                return self.node.peer.store.get(doc_id)
            except KeyError:
                return None
        reply = await self._rpc(owner, SnippetFetch(doc_id))
        if isinstance(reply, SnippetResponse) and reply.found:
            return Document(reply.doc_id, reply.text)
        return None

    # -- plumbing ------------------------------------------------------------

    async def _rpc(self, pid: int, msg: object) -> object | None:
        entry = self.node.peer.directory.get(pid)
        if entry is None or not entry.address:
            return None
        if self._fanout is None:
            return await self._gated_request(pid, entry.address, msg)
        async with self._fanout:
            return await self._gated_request(pid, entry.address, msg)

    async def _gated_request(
        self, pid: int, address: str, msg: object
    ) -> object | None:
        if self.peer_gate is None:
            return await self._request(pid, address, msg)
        async with self.peer_gate.slot(pid):
            return await self._request(pid, address, msg)

    async def _request(self, pid: int, address: str, msg: object) -> object | None:
        # The deadline covers only the RPC itself — time spent waiting on
        # the fan-out semaphore or the peer gate is scheduling, not the
        # peer being slow.
        try:
            request = self.node.transport.request(address, codec.encode(msg))
            if self.peer_deadline_s is not None:
                body = await asyncio.wait_for(request, self.peer_deadline_s)
            else:
                body = await request
            reply = codec.decode(body)
        except asyncio.TimeoutError:
            self.obs.counter(
                "client",
                "peer_deadline_timeouts_total",
                "RPCs abandoned at the per-peer deadline",
            ).inc()
            self.node._record_contact(pid, address, ok=False)
            return None
        except (TransportError, CodecError):
            self.node._record_contact(pid, address, ok=False)
            return None
        # An answer is the same positive liveness evidence a gossip
        # exchange is: it must heal an entry a failed contact marked
        # offline, or a restarted peer stays invisible to ranking until
        # the next gossip round happens to pick it.
        self.node._record_contact(pid, address, ok=True)
        return reply
