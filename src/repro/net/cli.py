"""Command line for running a real PlanetP node.

Launch a node, optionally bootstrap into an existing community, publish a
directory of text files, and gossip until stopped::

    # first node of a community
    python -m repro.net --peer-id 0 --port 9301 --corpus ./docs

    # later nodes bootstrap off any member
    python -m repro.net --peer-id 1 --port 9302 \\
        --bootstrap 127.0.0.1:9301 --corpus ./more-docs

    # one-shot: join, converge briefly, run a ranked query, exit
    python -m repro.net --peer-id 2 --bootstrap 127.0.0.1:9301 \\
        --query "gossip protocols" --max-runtime 10

Poll any live member's runtime metrics (gossip rounds, bytes on the
wire, Bloom compression, injected faults) without joining::

    python -m repro.net stats 127.0.0.1:9301
    python -m repro.net stats 127.0.0.1:9301 --grep bytes
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from repro.constants import GossipConfig, NET_DEFAULT_PORT, NetConfig
from repro.net import codec
from repro.net.chaos import EdgeFaults, FaultPlan, FaultyTransport
from repro.net.client import NetworkSearchClient
from repro.net.codec import StatsRequest, StatsResponse
from repro.net.node import NetworkPeer
from repro.net.transport import TcpTransport, Transport, TransportError
from repro.text.document import Document

__all__ = ["build_parser", "build_stats_parser", "run", "run_stats", "main"]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.net`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Run a PlanetP peer over real TCP sockets.",
    )
    parser.add_argument("--peer-id", type=int, required=True, help="community-unique id (0..65535)")
    parser.add_argument("--host", default="127.0.0.1", help="address to bind (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=NET_DEFAULT_PORT,
        help=f"TCP port to listen on (default {NET_DEFAULT_PORT}; 0 = ephemeral)",
    )
    parser.add_argument(
        "--bootstrap", default=None, metavar="HOST:PORT",
        help="existing member to join through (omit for the first node)",
    )
    parser.add_argument(
        "--corpus", type=Path, default=None, metavar="DIR",
        help="publish every *.txt file in DIR (doc id = file stem)",
    )
    parser.add_argument(
        "--gossip-interval", type=float, default=GossipConfig().base_interval_s,
        help="base gossip interval T_g in seconds (paper: 30)",
    )
    parser.add_argument(
        "--query", default=None, help="run one ranked query after joining, print the top-k, keep serving"
    )
    parser.add_argument("--top-k", type=int, default=10, help="k for --query (default 10)")
    parser.add_argument(
        "--max-runtime", type=float, default=None, metavar="SECONDS",
        help="exit after this many seconds (default: run forever)",
    )
    chaos = parser.add_argument_group(
        "chaos", "seeded fault injection on this node's outbound requests"
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="enable fault injection with this seed (off by default)",
    )
    chaos.add_argument(
        "--chaos-drop", type=float, default=0.1, metavar="P",
        help="per-request drop probability under --chaos-seed (default 0.1)",
    )
    chaos.add_argument(
        "--chaos-reset", type=float, default=0.0, metavar="P",
        help="mid-stream reset probability under --chaos-seed (default 0)",
    )
    chaos.add_argument(
        "--chaos-jitter", type=float, default=0.0, metavar="SECONDS",
        help="max added latency per request under --chaos-seed (default 0)",
    )
    return parser


def build_stats_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.net stats`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net stats",
        description="Poll a live peer's runtime metrics (its repro.obs registry).",
    )
    parser.add_argument("address", metavar="HOST:PORT", help="peer to poll")
    parser.add_argument(
        "--grep", default=None, metavar="SUBSTR",
        help="only print samples whose name contains SUBSTR",
    )
    return parser


async def run_stats(args: argparse.Namespace) -> None:
    """Send one StatsRequest to ``args.address`` and print the samples."""
    transport = TcpTransport(NetConfig())
    try:
        body = await transport.request(args.address, codec.encode(StatsRequest()))
    finally:
        await transport.close()
    reply = codec.decode(body)
    if not isinstance(reply, StatsResponse):
        raise TransportError(
            f"{args.address} answered with {type(reply).__name__}, not stats"
        )
    print(f"peer {reply.peer_id} at {args.address}: uptime {reply.uptime_s:.1f}s")
    for name, value in reply.samples:
        if args.grep is not None and args.grep not in name:
            continue
        rendered = f"{value:.6f}".rstrip("0").rstrip(".") if value != int(value) else str(int(value))
        print(f"  {name} {rendered}")


def _load_corpus(node: NetworkPeer, corpus: Path) -> int:
    count = 0
    for path in sorted(corpus.glob("*.txt")):
        node.publish(Document(path.stem, path.read_text(encoding="utf-8")))
        count += 1
    return count


def _chaos_transport(args: argparse.Namespace) -> Transport | None:
    """A fault-injecting TCP transport when ``--chaos-seed`` was given."""
    if args.chaos_seed is None:
        return None
    plan = FaultPlan(
        seed=args.chaos_seed,
        default=EdgeFaults(
            drop_rate=args.chaos_drop,
            reset_rate=args.chaos_reset,
            latency_max_s=args.chaos_jitter,
        ),
    )
    return FaultyTransport(TcpTransport(NetConfig()), plan)


async def run(args: argparse.Namespace) -> None:
    """Start a node per the parsed arguments and gossip until stopped."""
    config = GossipConfig(
        base_interval_s=args.gossip_interval,
        max_interval_s=args.gossip_interval * 2,
    )
    node = NetworkPeer(
        args.peer_id,
        args.host,
        args.port,
        gossip_config=config,
        transport=_chaos_transport(args),
    )
    address = await node.start()
    print(f"peer {args.peer_id} serving at {address}")
    if args.chaos_seed is not None:
        print(
            f"chaos enabled: seed={args.chaos_seed} drop={args.chaos_drop} "
            f"reset={args.chaos_reset} jitter<={args.chaos_jitter}s"
        )

    if args.corpus is not None:
        published = _load_corpus(node, args.corpus)
        print(f"published {published} documents from {args.corpus}")

    if args.bootstrap:
        await node.join(args.bootstrap)
        print(f"joined via {args.bootstrap}: {len(node.members())} members known")

    node.run()
    try:
        if args.query:
            # Give gossip a moment to converge before querying.
            await asyncio.sleep(min(2.0 * args.gossip_interval, 5.0))
            client = NetworkSearchClient(node)
            result = await client.ranked_search(args.query, k=args.top_k)
            print(f"ranked {args.query!r}: contacted {result.num_peers_contacted} peers")
            for doc in result.results:
                print(f"  {doc.doc_id:24s} score={doc.score:.3f}")
        if args.max_runtime is not None:
            await asyncio.sleep(args.max_runtime)
        else:
            while True:  # serve until interrupted
                await asyncio.sleep(3600.0)
    finally:
        await node.stop()
        print(f"peer {args.peer_id} stopped")


def main(argv: list[str] | None = None) -> None:
    """Console entry point: node daemon, or the ``stats`` subcommand."""
    argv = sys.argv[1:] if argv is None else argv
    try:
        if argv and argv[0] == "stats":
            asyncio.run(run_stats(build_stats_parser().parse_args(argv[1:])))
        else:
            asyncio.run(run(build_parser().parse_args(argv)))
    except KeyboardInterrupt:
        pass
    except (ValueError, TransportError, OSError) as exc:
        raise SystemExit(f"error: {exc}")


if __name__ == "__main__":
    main()
