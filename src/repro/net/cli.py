"""Command line for running a real PlanetP node.

Launch a node, optionally bootstrap into an existing community, publish a
directory of text files, and gossip until stopped::

    # first node of a community
    python -m repro.net --peer-id 0 --port 9301 --corpus ./docs

    # later nodes bootstrap off any member
    python -m repro.net --peer-id 1 --port 9302 \\
        --bootstrap 127.0.0.1:9301 --corpus ./more-docs

    # one-shot: join, converge briefly, run a ranked query, exit
    python -m repro.net --peer-id 2 --bootstrap 127.0.0.1:9301 \\
        --query "gossip protocols" --max-runtime 10

    # durable node: WAL + snapshots + directory checkpoint under ./state;
    # a crash or restart recovers documents and directory without
    # re-analyzing the corpus or re-fetching every Bloom filter
    python -m repro.net --peer-id 3 --port 9303 \\
        --bootstrap 127.0.0.1:9301 --corpus ./docs --data-dir ./state

Poll any live member's runtime metrics (gossip rounds, bytes on the
wire, Bloom compression, injected faults) without joining::

    python -m repro.net stats 127.0.0.1:9301
    python -m repro.net stats 127.0.0.1:9301 --grep bytes

Post a persistent query (paper Section 5.1) at a serving member and
print each upcall as matching documents are published anywhere in the
community::

    python -m repro.net subscribe 127.0.0.1:9301 "gossip protocols"
    python -m repro.net subscribe 127.0.0.1:9301 "bloom" --max-runtime 30

Retrieve a document's bytes from the content plane (``--replicas N``
on the serving nodes keeps N copies on the replica ring, so the fetch
works even after the publisher dies)::

    python -m repro.net get 127.0.0.1:9301 some/doc-id
    python -m repro.net get 127.0.0.1:9301 some/doc-id --out doc.txt

Mine the community (``--analytics`` on the serving nodes): ask any
member for its converged community-wide frequent-term estimate, or
browse the popularity-ranked global namespace (every path *is* a query
over the member's documents)::

    python -m repro.net top-terms 127.0.0.1:9301 --k 20
    python -m repro.net browse 127.0.0.1:9301 /gossip/protocols
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from pathlib import Path

from repro.constants import (
    NET_DEFAULT_PORT,
    AnalyticsConfig,
    BloomConfig,
    ContentConfig,
    GossipConfig,
    NetConfig,
    PartialViewConfig,
    StoreConfig,
)
from repro.gossip.wire import (
    BrowseRequest,
    BrowseResponse,
    TopTermsReply,
    TopTermsRequest,
)
from repro.net import codec
from repro.net.chaos import EdgeFaults, FaultPlan, FaultyTransport
from repro.net.client import NetworkSearchClient
from repro.net.codec import StatsRequest, StatsResponse
from repro.net.node import NetworkPeer
from repro.net.transport import TcpTransport, Transport, TransportError
from repro.text.document import Document

__all__ = [
    "build_parser",
    "build_browse_parser",
    "build_get_parser",
    "build_stats_parser",
    "build_subscribe_parser",
    "build_top_terms_parser",
    "run",
    "run_browse",
    "run_get",
    "run_stats",
    "run_subscribe",
    "run_top_terms",
    "main",
]


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.net`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="Run a PlanetP peer over real TCP sockets.",
    )
    parser.add_argument("--peer-id", type=int, required=True, help="community-unique id (0..65535)")
    parser.add_argument("--host", default="127.0.0.1", help="address to bind (default 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=NET_DEFAULT_PORT,
        help=f"TCP port to listen on (default {NET_DEFAULT_PORT}; 0 = ephemeral)",
    )
    parser.add_argument(
        "--bootstrap", default=None, metavar="HOST:PORT",
        help="existing member to join through (omit for the first node)",
    )
    parser.add_argument(
        "--corpus", type=Path, default=None, metavar="DIR",
        help="publish every *.txt file under DIR, recursively "
             "(doc id = relative path without the suffix)",
    )
    parser.add_argument(
        "--data-dir", type=Path, default=None, metavar="DIR",
        help="persist the data store (WAL + snapshots) and directory "
             "checkpoint under DIR, and restart warm from it",
    )
    parser.add_argument(
        "--snapshot-every", type=int, default=StoreConfig().snapshot_every,
        metavar="N",
        help="WAL records between automatic snapshots under --data-dir "
             f"(default {StoreConfig().snapshot_every})",
    )
    parser.add_argument(
        "--no-fsync", action="store_true",
        help="skip the WAL fsync before acking publishes (trades crash "
             "durability of the newest records for throughput; useful for "
             "large single-host fleets)",
    )
    parser.add_argument(
        "--bloom-bits", type=int, default=BloomConfig().num_bits, metavar="BITS",
        help="Bloom filter size in bits — every member of a community must "
             f"agree on it (default {BloomConfig().num_bits}; smaller "
             "filters shrink per-member directory memory at large scale)",
    )
    parser.add_argument(
        "--bloom-hashes", type=int, default=BloomConfig().num_hashes, metavar="K",
        help=f"Bloom filter hash count (default {BloomConfig().num_hashes})",
    )
    parser.add_argument(
        "--gossip-interval", type=float, default=GossipConfig().base_interval_s,
        help="base gossip interval T_g in seconds (paper: 30)",
    )
    parser.add_argument(
        "--partial-view", action="store_true",
        help="keep full Bloom filters only for this node's directory shard "
             "plus a bounded sample; other shards are coarse OR-summaries "
             "(sublinear directory memory for very large communities)",
    )
    parser.add_argument(
        "--shards", type=int, default=PartialViewConfig().num_shards, metavar="N",
        help="directory shard count under --partial-view — every member of "
             f"a community must agree on it (default "
             f"{PartialViewConfig().num_shards})",
    )
    parser.add_argument(
        "--view-sample", type=int, default=PartialViewConfig().sample_size,
        metavar="M",
        help="out-of-shard full filters to sample under --partial-view "
             f"(default {PartialViewConfig().sample_size})",
    )
    parser.add_argument(
        "--replicas", type=int, default=ContentConfig().replicas, metavar="K",
        help="keep K copies of every published document on the content "
             "plane's consistent-hash ring (default "
             f"{ContentConfig().replicas}; 0 = serve own documents only)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=ContentConfig().chunk_size,
        metavar="BYTES",
        help="content-plane transfer chunk size "
             f"(default {ContentConfig().chunk_size})",
    )
    parser.add_argument(
        "--analytics", action="store_true",
        help="gossip mergeable term/popularity sketches each round and "
             "serve top-terms and browse requests (off by default)",
    )
    parser.add_argument(
        "--sketch-capacity", type=int,
        default=AnalyticsConfig().sketch_capacity, metavar="N",
        help="space-saving counters per node under --analytics "
             f"(default {AnalyticsConfig().sketch_capacity}; per-term "
             "error is bounded by local-terms/N)",
    )
    parser.add_argument(
        "--query", default=None, help="run one ranked query after joining, print the top-k, keep serving"
    )
    parser.add_argument("--top-k", type=int, default=10, help="k for --query (default 10)")
    parser.add_argument(
        "--max-runtime", type=float, default=None, metavar="SECONDS",
        help="exit after this many seconds (default: run forever)",
    )
    chaos = parser.add_argument_group(
        "chaos", "seeded fault injection on this node's outbound requests"
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=None, metavar="SEED",
        help="enable fault injection with this seed (off by default)",
    )
    chaos.add_argument(
        "--chaos-drop", type=float, default=0.1, metavar="P",
        help="per-request drop probability under --chaos-seed (default 0.1)",
    )
    chaos.add_argument(
        "--chaos-reset", type=float, default=0.0, metavar="P",
        help="mid-stream reset probability under --chaos-seed (default 0)",
    )
    chaos.add_argument(
        "--chaos-jitter", type=float, default=0.0, metavar="SECONDS",
        help="max added latency per request under --chaos-seed (default 0)",
    )
    return parser


def build_stats_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.net stats`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net stats",
        description="Poll a live peer's runtime metrics (its repro.obs registry).",
    )
    parser.add_argument("address", metavar="HOST:PORT", help="peer to poll")
    parser.add_argument(
        "--grep", default=None, metavar="SUBSTR",
        help="only print samples whose name contains SUBSTR",
    )
    return parser


def build_get_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.net get`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net get",
        description="Fetch a document's bytes from the content plane, "
        "verified against its manifest digest.",
    )
    parser.add_argument("address", metavar="HOST:PORT", help="any community member")
    parser.add_argument("doc_id", metavar="DOC_ID", help="document to fetch")
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write the bytes to FILE (default: print to stdout)",
    )
    parser.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-RPC deadline before falling back to the next replica "
        "(default 5)",
    )
    return parser


def build_top_terms_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.net top-terms`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net top-terms",
        description="Ask an analytics-serving peer for its converged "
        "community-wide frequent-term estimate.",
    )
    parser.add_argument("address", metavar="HOST:PORT", help="peer to ask")
    parser.add_argument(
        "--k", type=int, default=10, metavar="K",
        help="how many terms to print (default 10)",
    )
    return parser


def build_browse_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.net browse`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net browse",
        description="List one directory of the popularity-ranked global "
        "namespace at an analytics-serving peer (the path is the query).",
    )
    parser.add_argument("address", metavar="HOST:PORT", help="peer to ask")
    parser.add_argument("path", metavar="/PATH", help="directory to list, e.g. /gossip/protocols")
    parser.add_argument(
        "--k", type=int, default=20, metavar="K",
        help="how many entries to list (default 20)",
    )
    return parser


def build_subscribe_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.net subscribe`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.net subscribe",
        description="Post a persistent query at a serving peer and print "
        "each upcall as matching documents are published.",
    )
    parser.add_argument("address", metavar="HOST:PORT", help="serving peer")
    parser.add_argument("query", help="conjunctive query terms")
    parser.add_argument(
        "--listen-host", default="127.0.0.1",
        help="address to receive upcalls on (default 127.0.0.1)",
    )
    parser.add_argument(
        "--listen-port", type=int, default=0,
        help="port to receive upcalls on (default: ephemeral)",
    )
    parser.add_argument(
        "--max-runtime", type=float, default=None, metavar="SECONDS",
        help="unsubscribe and exit after this many seconds "
        "(default: listen forever)",
    )
    return parser


async def run_subscribe(args: argparse.Namespace) -> None:
    """Post a standing query and print upcalls until stopped."""
    from repro.serve.subscriptions import SubscriptionClient

    client = SubscriptionClient(args.listen_host, args.listen_port)

    def upcall(notify) -> None:
        preview = " ".join(notify.text.split())[:72]
        print(f"notify sub={notify.sub_id} origin=peer-{notify.origin} "
              f"doc={notify.doc_id!r}: {preview}", flush=True)

    await client.start()
    try:
        sub_id = await client.subscribe(args.address, args.query, upcall)
        print(
            f"subscribed #{sub_id} at {args.address} for {args.query!r}; "
            f"upcalls to {client.address}",
            flush=True,
        )
        if args.max_runtime is not None:
            await asyncio.sleep(args.max_runtime)
            await client.unsubscribe(args.address, sub_id)
            print(f"unsubscribed #{sub_id}")
        else:
            while True:  # listen until interrupted
                await asyncio.sleep(3600.0)
    finally:
        await client.close()


async def run_get(args: argparse.Namespace) -> None:
    """Fetch one document via :class:`~repro.content.ContentClient`."""
    from repro.content import ContentClient, ContentNotFound

    transport = TcpTransport(NetConfig())
    client = ContentClient(transport, request_timeout_s=args.timeout)
    try:
        try:
            data = await client.fetch([args.address], args.doc_id)
        except ContentNotFound as exc:
            raise TransportError(str(exc)) from None
    finally:
        await transport.close()
    if args.out is not None:
        args.out.write_bytes(data)
        print(f"wrote {len(data)} bytes of {args.doc_id!r} to {args.out}")
    else:
        sys.stdout.buffer.write(data)
        sys.stdout.buffer.flush()


async def _request_once(address: str, msg: object) -> object:
    """One encoded request/decoded reply against a raw address."""
    transport = TcpTransport(NetConfig())
    try:
        body = await transport.request(address, codec.encode(msg))
    finally:
        await transport.close()
    return codec.decode(body)


async def run_top_terms(args: argparse.Namespace) -> None:
    """Print one peer's community-wide top-k term estimate."""
    reply = await _request_once(args.address, TopTermsRequest(args.k))
    if not isinstance(reply, TopTermsReply):
        raise TransportError(
            f"{args.address} answered with {type(reply).__name__} "
            f"(is it running with --analytics?)"
        )
    print(
        f"top {min(args.k, len(reply.entries))} terms at {args.address} "
        f"({reply.origin_count} origins merged):"
    )
    for term, count in reply.entries:
        print(f"  {term:24s} {count}")


async def run_browse(args: argparse.Namespace) -> None:
    """Print one popularity-ranked directory listing from a peer."""
    reply = await _request_once(args.address, BrowseRequest(args.path, args.k))
    if not isinstance(reply, BrowseResponse):
        raise TransportError(
            f"{args.address} answered with {type(reply).__name__} "
            f"(is it running with --analytics?)"
        )
    if not reply.found:
        raise SystemExit(f"error: {args.path!r} is not a browsable path")
    print(
        f"{reply.path} at {args.address} "
        f"(generation {reply.generation:#x}, {len(reply.entries)} entries):"
    )
    for doc_id, link, popularity in reply.entries:
        print(f"  {doc_id:32s} pop={popularity:<6d} {link}")


async def run_stats(args: argparse.Namespace) -> None:
    """Send one StatsRequest to ``args.address`` and print the samples."""
    transport = TcpTransport(NetConfig())
    try:
        body = await transport.request(args.address, codec.encode(StatsRequest()))
    finally:
        await transport.close()
    reply = codec.decode(body)
    if not isinstance(reply, StatsResponse):
        raise TransportError(
            f"{args.address} answered with {type(reply).__name__}, not stats"
        )
    print(f"peer {reply.peer_id} at {args.address}: uptime {reply.uptime_s:.1f}s")
    for name, value in reply.samples:
        if args.grep is not None and args.grep not in name:
            continue
        rendered = f"{value:.6f}".rstrip("0").rstrip(".") if value != int(value) else str(int(value))
        print(f"  {name} {rendered}")


def _load_corpus(node: NetworkPeer, corpus: Path) -> int:
    """Publish every ``*.txt`` under ``corpus`` (recursively).

    Doc ids are relative paths without the suffix, so nested corpora
    can't collide on file stems.  Files already in the store (a warm
    ``--data-dir`` restart) are skipped, as are unreadable paths — one
    bad file must not take down the node.  Undecodable bytes are
    replaced rather than fatal.
    """
    count = 0
    for path in sorted(corpus.rglob("*.txt")):
        doc_id = path.relative_to(corpus).with_suffix("").as_posix()
        if doc_id in node.peer.store:
            continue  # recovered from the data dir; don't re-publish
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as exc:
            print(f"warning: skipping unreadable {path}: {exc}", file=sys.stderr)
            continue
        node.publish(Document(doc_id, text))
        count += 1
    return count


def _chaos_transport(args: argparse.Namespace) -> Transport | None:
    """A fault-injecting TCP transport when ``--chaos-seed`` was given."""
    if args.chaos_seed is None:
        return None
    plan = FaultPlan(
        seed=args.chaos_seed,
        default=EdgeFaults(
            drop_rate=args.chaos_drop,
            reset_rate=args.chaos_reset,
            latency_max_s=args.chaos_jitter,
        ),
    )
    return FaultyTransport(TcpTransport(NetConfig()), plan)


def _check_data_dir(data_dir: Path) -> None:
    """Refuse an existing-but-unreadable directory checkpoint.

    Checkpoint writes are atomic (tmp + rename), so a checkpoint that
    exists yet fails to parse is real damage, not a torn write.  The
    library layer would silently cold-start over it; at the CLI — where
    the operator explicitly asked for a warm restart — discarding state
    without saying so is worse than stopping, so fail with instructions.
    """
    from repro.store import load_checkpoint

    ckpt_path = data_dir / "directory.ckpt"
    if ckpt_path.exists() and load_checkpoint(ckpt_path) is None:
        raise ValueError(
            f"corrupt directory checkpoint at {ckpt_path}; delete it to "
            f"cold-start from the WAL/snapshots (documents are unaffected)"
        )


async def run(args: argparse.Namespace) -> None:
    """Start a node per the parsed arguments and gossip until stopped."""
    config = GossipConfig(
        base_interval_s=args.gossip_interval,
        max_interval_s=args.gossip_interval * 2,
    )
    if args.data_dir is not None:
        _check_data_dir(args.data_dir)
    node = NetworkPeer(
        args.peer_id,
        args.host,
        args.port,
        gossip_config=config,
        bloom_config=BloomConfig(
            num_bits=args.bloom_bits, num_hashes=args.bloom_hashes
        ),
        transport=_chaos_transport(args),
        data_dir=args.data_dir,
        store_config=StoreConfig(
            snapshot_every=args.snapshot_every, fsync=not args.no_fsync
        )
        if args.data_dir is not None
        else None,
        partial_view=PartialViewConfig(
            num_shards=args.shards, sample_size=args.view_sample
        )
        if args.partial_view
        else None,
        content_config=ContentConfig(
            replicas=args.replicas, chunk_size=args.chunk_size
        ),
        analytics_config=AnalyticsConfig(sketch_capacity=args.sketch_capacity)
        if args.analytics
        else None,
    )
    address = await node.start()
    print(f"peer {args.peer_id} serving at {address}")
    if node.persistence is not None:
        recovery = node.persistence.last_recovery
        if recovery.documents or node.restored_members:
            print(
                f"warm start: {recovery.documents} documents recovered "
                f"({recovery.replayed_records} WAL records replayed), "
                f"{node.restored_members} members from checkpoint"
            )
    if args.chaos_seed is not None:
        print(
            f"chaos enabled: seed={args.chaos_seed} drop={args.chaos_drop} "
            f"reset={args.chaos_reset} jitter<={args.chaos_jitter}s"
        )
    if node.pview is not None:
        print(
            f"partial view: shards={args.shards} sample={args.view_sample} "
            f"home={node.pview.home}"
        )
    if node.content.active:
        print(
            f"content replication: k={args.replicas} "
            f"chunk-size={args.chunk_size}"
        )
    if node.analytics.enabled:
        print(f"analytics: sketch-capacity={args.sketch_capacity}")

    if args.corpus is not None:
        published = _load_corpus(node, args.corpus)
        print(f"published {published} documents from {args.corpus}")

    if args.bootstrap:
        if node.restored_members > 0:
            # The checkpoint already seeded the directory; the REJOIN
            # rumor minted at start re-introduces us, so a full join
            # snapshot transfer would be wasted bytes.
            print(
                f"warm rejoin: {node.restored_members} members from the "
                f"checkpoint; skipping bootstrap snapshot"
            )
        else:
            await node.join(args.bootstrap)
            print(f"joined via {args.bootstrap}: {len(node.members())} members known")

    # One machine-readable line once the node is fully up (serving,
    # corpus published, joined): orchestrators parse it for the bound
    # ephemeral port instead of scraping the human-oriented output.
    print(
        f"PLANETP_READY peer={args.peer_id} addr={address} pid={os.getpid()} "
        f"members={len(node.members())}",
        flush=True,
    )

    node.run()
    try:
        if args.query:
            # Give gossip a moment to converge before querying.
            await asyncio.sleep(min(2.0 * args.gossip_interval, 5.0))
            client = NetworkSearchClient(node)
            result = await client.ranked_search(args.query, k=args.top_k)
            print(f"ranked {args.query!r}: contacted {result.num_peers_contacted} peers")
            for doc in result.results:
                print(f"  {doc.doc_id:24s} score={doc.score:.3f}")
        if args.max_runtime is not None:
            await asyncio.sleep(args.max_runtime)
        else:
            while True:  # serve until interrupted
                await asyncio.sleep(3600.0)
    finally:
        await node.stop()
        print(f"peer {args.peer_id} stopped")


def main(argv: list[str] | None = None) -> None:
    """Console entry point: node daemon, or the ``stats`` subcommand."""
    argv = sys.argv[1:] if argv is None else argv
    try:
        if argv and argv[0] == "stats":
            asyncio.run(run_stats(build_stats_parser().parse_args(argv[1:])))
        elif argv and argv[0] == "top-terms":
            asyncio.run(run_top_terms(build_top_terms_parser().parse_args(argv[1:])))
        elif argv and argv[0] == "browse":
            asyncio.run(run_browse(build_browse_parser().parse_args(argv[1:])))
        elif argv and argv[0] == "get":
            asyncio.run(run_get(build_get_parser().parse_args(argv[1:])))
        elif argv and argv[0] == "subscribe":
            asyncio.run(run_subscribe(build_subscribe_parser().parse_args(argv[1:])))
        else:
            asyncio.run(run(build_parser().parse_args(argv)))
    except KeyboardInterrupt:
        pass
    except (ValueError, TransportError, OSError) as exc:
        raise SystemExit(f"error: {exc}")


if __name__ == "__main__":
    main()
