"""Transports: how frame bodies move between peers.

Everything above this layer is request/response: a peer sends one encoded
frame and awaits exactly one frame in reply (the gossip exchanges of
Section 3 map onto such pairs — push/reply, digest/summary, pull/data).
A :class:`Transport` therefore needs only two verbs: ``serve`` (register
an async handler at an address) and ``request`` (send bytes, get bytes).

Two implementations:

* :class:`TcpTransport` — real asyncio sockets.  Frames are 4-byte
  big-endian length prefixes + body, with a max-frame guard against
  malformed peers.  Outbound connections are cached per address and
  reused across requests (one in-flight request per connection, as the
  protocol is strictly request/response).  Connection-level failures are
  retried with exponential backoff + jitter under an overall per-request
  deadline (framing violations are never retried — retrying a protocol
  error cannot help).
* :class:`LoopbackTransport` — an in-memory :class:`LoopbackNetwork` with
  injectable latency and seeded random drops, for deterministic tests of
  the full node logic without sockets.

For fault injection on top of either transport (partitions, crash
windows, per-edge loss and jitter) see :mod:`repro.net.chaos`.

Every transport is observable: after :meth:`Transport.bind_registry`, an
endpoint records bytes in/out, request counts, retries/failures, backoff
delay, and a per-request latency histogram into a
:class:`~repro.obs.Registry` (component ``transport``), so a live node's
traffic is measurable against the Table 2 byte model.
"""

from __future__ import annotations

import asyncio
import struct
import time
from abc import ABC, abstractmethod
from typing import Awaitable, Callable

import numpy as np

from repro.constants import NetConfig
from repro.obs import Registry

__all__ = [
    "TransportError",
    "RetryableTransportError",
    "Handler",
    "Transport",
    "TcpTransport",
    "LoopbackNetwork",
    "LoopbackTransport",
]

#: An async server callback: one request frame body in, one reply out.
Handler = Callable[[bytes], Awaitable[bytes]]

_LEN = struct.Struct(">I")


class TransportError(ConnectionError):
    """A peer could not be reached, timed out, or broke framing rules."""


class RetryableTransportError(TransportError):
    """A transient failure (refused/reset/timeout) worth retrying."""


class Transport(ABC):
    """Abstract request/response frame carrier."""

    #: observability home; set by :meth:`bind_registry`, else silent.
    registry: Registry | None = None

    def bind_registry(self, registry: Registry) -> None:
        """Record this endpoint's traffic into ``registry``.

        Idempotent and safe to call before or after :meth:`serve`;
        decorating transports (see :class:`~repro.net.chaos.
        FaultyTransport`) override this to bind their inner transport
        too, so one call instruments the whole stack.
        """
        self.registry = registry
        # Resolve the hot-path instruments once; per-request accounting
        # must not pay a registry lookup per increment.
        self._c_requests = registry.counter(
            "transport", "requests_total", "client RPCs issued"
        )
        self._c_served = registry.counter(
            "transport", "served_requests_total", "inbound RPCs handled"
        )
        self._c_bytes_sent = registry.counter(
            "transport", "bytes_sent_total", "frame-body bytes written"
        )
        self._c_bytes_recv = registry.counter(
            "transport", "bytes_recv_total", "frame-body bytes read"
        )
        self._h_latency = registry.histogram(
            "transport",
            "request_latency_seconds",
            "client-observed per-request latency",
        )

    # -- shared accounting helpers (no-ops until a registry is bound) -------

    def _count_sent(self, nbytes: int) -> None:
        if self.registry is not None:
            self._c_requests.inc()
            self._c_bytes_sent.inc(nbytes)

    def _count_reply(self, nbytes: int, latency_s: float) -> None:
        if self.registry is not None:
            self._c_bytes_recv.inc(nbytes)
            self._h_latency.observe(latency_s)

    def _count_served(self, in_bytes: int, out_bytes: int) -> None:
        if self.registry is not None:
            self._c_served.inc()
            self._c_bytes_recv.inc(in_bytes)
            self._c_bytes_sent.inc(out_bytes)

    @abstractmethod
    async def serve(self, address: str, handler: Handler) -> str:
        """Start serving ``handler`` at ``address``; return the bound
        address (which may differ, e.g. an ephemeral TCP port)."""

    @abstractmethod
    async def request(self, address: str, body: bytes) -> bytes:
        """Send one frame to ``address`` and await the reply frame.

        Raises :class:`TransportError` on connection failure, timeout, or
        framing violation.
        """

    @abstractmethod
    async def close(self) -> None:
        """Stop serving and release all connections."""


# ---------------------------------------------------------------------------
# real sockets
# ---------------------------------------------------------------------------


async def _read_frame(reader: asyncio.StreamReader, max_frame: int) -> bytes:
    """Read one length-prefixed frame; raises on EOF or oversize."""
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > max_frame:
        raise TransportError(f"frame of {length} bytes exceeds max {max_frame}")
    return await reader.readexactly(length)


def _write_frame(writer: asyncio.StreamWriter, body: bytes) -> None:
    """Queue one length-prefixed frame for writing."""
    writer.write(_LEN.pack(len(body)) + body)


class TcpTransport(Transport):
    """Asyncio TCP transport with a per-peer connection cache.

    ``seed`` fixes the retry-jitter stream for reproducible tests; the
    default is nondeterministic jitter, which is what a deployment wants.
    """

    def __init__(
        self, config: NetConfig | None = None, *, seed: int | None = None
    ) -> None:
        self.config = config or NetConfig()
        self._server: asyncio.AbstractServer | None = None
        self._handler: Handler | None = None
        self._client_tasks: set[asyncio.Task] = set()
        self._rng = np.random.default_rng(seed)
        #: requests that needed at least one retry / that exhausted retries.
        self.retried_requests = 0
        self.failed_requests = 0
        #: address -> (reader, writer, lock); one in-flight request each.
        self._conns: dict[
            str, tuple[asyncio.StreamReader, asyncio.StreamWriter, asyncio.Lock]
        ] = {}

    @staticmethod
    def _split(address: str) -> tuple[str, int]:
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise TransportError(f"bad address {address!r}; want host:port")
        return host, int(port)

    async def serve(self, address: str, handler: Handler) -> str:
        """Bind a TCP server at ``host:port`` (port 0 picks an ephemeral
        one) and return the actual ``host:port`` bound."""
        host, port = self._split(address)
        self._handler = handler
        self._server = await asyncio.start_server(self._on_client, host, port)
        bound_port = self._server.sockets[0].getsockname()[1]
        return f"{host}:{bound_port}"

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve request/response pairs on one inbound connection."""
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
        try:
            while True:
                body = await _read_frame(reader, self.config.max_frame_bytes)
                assert self._handler is not None
                reply = await self._handler(body)
                _write_frame(writer, reply)
                await writer.drain()
                self._count_served(len(body), len(reply))
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionError,
            TransportError,
        ):
            pass  # client went away, server shut down, or framing broke
        finally:
            if task is not None:
                self._client_tasks.discard(task)
            writer.close()

    async def _connection(
        self, address: str
    ) -> tuple[asyncio.StreamReader, asyncio.StreamWriter, asyncio.Lock]:
        conn = self._conns.get(address)
        if conn is not None and not conn[1].is_closing():
            return conn
        host, port = self._split(address)
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), self.config.connect_timeout_s
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise RetryableTransportError(
                f"cannot connect to {address}: {exc}"
            ) from exc
        conn = (reader, writer, asyncio.Lock())
        self._conns[address] = conn
        return conn

    async def request(self, address: str, body: bytes) -> bytes:
        """One RPC to ``address``, retrying transient failures.

        Connection-level failures (refused, reset, timed out) are retried
        up to ``config.request_retries`` times with exponential backoff and
        jitter, all under ``config.request_deadline_s``.  Framing
        violations raise immediately.  The request may be *delivered* more
        than once (the failure could have hit the reply); callers needing
        exactly-once must make their handlers idempotent — every gossip
        message of Section 3 already is.
        """
        cfg = self.config
        reg = self.registry
        started = time.monotonic()
        deadline = started + cfg.request_deadline_s
        attempt = 0
        self._count_sent(0)  # the request itself; bytes counted per attempt
        while True:
            try:
                reply = await self._attempt(address, body)
                self._count_reply(len(reply), time.monotonic() - started)
                return reply
            except RetryableTransportError:
                attempt += 1
                if attempt > cfg.request_retries:
                    self._count_failed(reg)
                    raise
                delay = min(
                    cfg.retry_backoff_s * 2.0 ** (attempt - 1),
                    cfg.retry_backoff_max_s,
                )
                delay *= 1.0 + cfg.retry_jitter_frac * float(self._rng.random())
                if time.monotonic() + delay > deadline:
                    self._count_failed(reg)
                    raise
                self.retried_requests += 1
                if reg is not None:
                    reg.counter(
                        "transport", "retries_total", "RPC attempts retried"
                    ).inc()
                    reg.counter(
                        "transport",
                        "backoff_seconds_total",
                        "cumulative retry backoff delay",
                    ).inc(delay)
                    reg.emit(
                        "retry_scheduled",
                        address=address,
                        attempt=attempt,
                        delay_s=round(delay, 6),
                    )
                await asyncio.sleep(delay)

    def _count_failed(self, reg: Registry | None) -> None:
        self.failed_requests += 1
        if reg is not None:
            reg.counter(
                "transport", "failed_requests_total", "RPCs that exhausted retries"
            ).inc()

    async def _attempt(self, address: str, body: bytes) -> bytes:
        """One try of one RPC over the cached connection to ``address``."""
        reader, writer, lock = await self._connection(address)
        async with lock:
            try:
                _write_frame(writer, body)
                await writer.drain()
                if self.registry is not None:
                    self.registry.counter(
                        "transport", "bytes_sent_total", "frame-body bytes written"
                    ).inc(len(body))
                return await asyncio.wait_for(
                    _read_frame(reader, self.config.max_frame_bytes),
                    self.config.request_timeout_s,
                )
            except TransportError:
                self._drop(address)  # framing violated; connection unusable
                raise
            except (
                OSError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ) as exc:
                self._drop(address)
                raise RetryableTransportError(
                    f"request to {address} failed: {exc}"
                ) from exc

    def _drop(self, address: str) -> None:
        conn = self._conns.pop(address, None)
        if conn is not None:
            conn[1].close()

    async def close(self) -> None:
        """Close the server, inbound handlers, and cached connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            await asyncio.gather(*self._client_tasks, return_exceptions=True)
        self._client_tasks.clear()
        for address in list(self._conns):
            self._drop(address)


# ---------------------------------------------------------------------------
# deterministic in-memory network
# ---------------------------------------------------------------------------


class LoopbackNetwork:
    """Shared in-memory fabric for :class:`LoopbackTransport` endpoints.

    ``latency_s`` is applied on each direction of every request;
    ``drop_rate`` makes a request fail with :class:`TransportError`
    (decided by a seeded generator, so tests are reproducible).
    """

    def __init__(
        self, latency_s: float = 0.0, drop_rate: float = 0.0, seed: int = 0
    ) -> None:
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError("drop_rate must be a probability")
        self.latency_s = latency_s
        self.drop_rate = drop_rate
        self.rng = np.random.default_rng(seed)
        self.handlers: dict[str, Handler] = {}
        #: total frame bodies carried, for tests that audit traffic.
        self.frames_carried = 0
        self.bytes_carried = 0

    def transport(self) -> "LoopbackTransport":
        """Create a new endpoint attached to this fabric."""
        return LoopbackTransport(self)

    async def deliver(self, address: str, body: bytes) -> bytes:
        """Route one request to the handler serving ``address``."""
        if self.drop_rate > 0.0 and self.rng.random() < self.drop_rate:
            raise TransportError(f"request to {address} dropped (injected)")
        handler = self.handlers.get(address)
        if handler is None:
            raise TransportError(f"no peer serving at {address}")
        if self.latency_s > 0.0:
            await asyncio.sleep(self.latency_s)
        self.frames_carried += 1
        self.bytes_carried += len(body)
        reply = await handler(body)
        if self.latency_s > 0.0:
            await asyncio.sleep(self.latency_s)
        self.frames_carried += 1
        self.bytes_carried += len(reply)
        return reply


class LoopbackTransport(Transport):
    """One endpoint of a :class:`LoopbackNetwork`."""

    def __init__(self, network: LoopbackNetwork) -> None:
        self.network = network
        self._addresses: list[str] = []

    async def serve(self, address: str, handler: Handler) -> str:
        """Register ``handler`` at ``address`` on the shared fabric."""
        if address in self.network.handlers:
            raise TransportError(f"address {address} already in use")

        async def accounted(body: bytes) -> bytes:
            reply = await handler(body)
            self._count_served(len(body), len(reply))
            return reply

        self.network.handlers[address] = accounted
        self._addresses.append(address)
        return address

    async def request(self, address: str, body: bytes) -> bytes:
        """Route the request through the fabric (latency/drops applied)."""
        self._count_sent(len(body))
        started = time.monotonic()
        reply = await self.network.deliver(address, body)
        self._count_reply(len(reply), time.monotonic() - started)
        return reply

    async def close(self) -> None:
        """Deregister this endpoint's addresses."""
        for address in self._addresses:
            self.network.handlers.pop(address, None)
        self._addresses.clear()
