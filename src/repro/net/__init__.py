"""The real network layer: PlanetP peers over actual sockets.

Everything else in the repository is in-process — the gossip simulator
moves byte counts and :class:`~repro.core.community.InProcessCommunity`
calls peers as Python objects.  This package carries the same protocol
objects over real transports:

``codec``      versioned binary wire format for the full gossip inventory
               (:mod:`repro.gossip.wire`) plus the search RPCs
``transport``  asyncio TCP with connection caching and retry/backoff,
               and a deterministic in-memory loopback with injectable
               latency/drops
``chaos``      seeded fault injection over any transport: drops, resets,
               jitter, MIX bandwidth caps, partitions, crash windows
``node``       :class:`NetworkPeer` — a peer as an asyncio server running
               the Section 3 gossip state machine on wall-clock time
``client``     :class:`NetworkSearchClient` — ranked TF×IPF and
               exhaustive search issued over the wire
``cli``        ``python -m repro.net`` to launch a node, and
               ``python -m repro.net stats <addr>`` to poll a live one

The whole stack records into a :mod:`repro.obs` registry (transport
bytes/latency, gossip rounds, injected faults, Bloom compression), and
any peer answers a :class:`StatsRequest` with its flattened samples.

Quick start (async context)::

    a = NetworkPeer(0)
    await a.start()
    b = NetworkPeer(1)
    await b.start()
    await b.join(a.address)
    b.publish(Document("d1", "gossip protocols over real sockets"))
    for _ in range(6):
        await a.gossip_round()
        await b.gossip_round()
    result = await NetworkSearchClient(a).ranked_search("gossip", k=5)
"""

from repro.net.chaos import (
    EdgeFaults,
    FaultPlan,
    FaultyTransport,
    VirtualClock,
)
from repro.net.client import NetworkSearchClient
from repro.net.codec import (
    CodecError,
    ErrorReply,
    ExhaustiveQuery,
    ExhaustiveResponse,
    RankedQuery,
    RankedResponse,
    SnippetFetch,
    SnippetResponse,
    StatsRequest,
    StatsResponse,
    decode,
    encode,
)
from repro.net.node import NetworkPeer
from repro.net.transport import (
    LoopbackNetwork,
    LoopbackTransport,
    RetryableTransportError,
    TcpTransport,
    Transport,
    TransportError,
)

__all__ = [
    "NetworkPeer",
    "NetworkSearchClient",
    "Transport",
    "TcpTransport",
    "LoopbackNetwork",
    "LoopbackTransport",
    "TransportError",
    "RetryableTransportError",
    "EdgeFaults",
    "FaultPlan",
    "FaultyTransport",
    "VirtualClock",
    "CodecError",
    "encode",
    "decode",
    "RankedQuery",
    "RankedResponse",
    "ExhaustiveQuery",
    "ExhaustiveResponse",
    "SnippetFetch",
    "SnippetResponse",
    "StatsRequest",
    "StatsResponse",
    "ErrorReply",
]
