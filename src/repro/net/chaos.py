"""Deterministic fault injection for the real network layer.

The paper's central claim (Section 3, Figures 4-5) is that gossip keeps
the replicated directory converged *under failure* — dead peers, lossy
links, flash crowds of rejoining nodes.  This module makes those failures
injectable and reproducible so the claim can be tested end-to-end:

* :class:`FaultPlan` — a seeded, scriptable fault schedule shared by all
  endpoints of one community: per-edge drop probability, mid-stream
  connection resets (request delivered, reply lost), latency jitter,
  per-address bandwidth caps drawn from the Table 2 MIX distribution,
  asymmetric partitions with heal times, and per-address crash windows.
  Every random decision comes from a per-edge generator derived from the
  plan seed, so a run is reproducible from its seed alone.
* :class:`FaultyTransport` — wraps any :class:`~repro.net.transport.
  Transport` (loopback or TCP) and applies the plan to each request.
* :class:`VirtualClock` — an injectable clock whose ``sleep`` advances
  virtual time instead of wall time, so chaos scenarios with seconds of
  simulated jitter run in milliseconds and stay deterministic.

Faults are injected *above* the wrapped transport, so a fault-injected
drop is seen by the caller even when the inner transport retries: the
plan models the network the retries are fighting, not the retries
themselves.

When a :class:`~repro.obs.Registry` is bound (:meth:`FaultyTransport.
bind_registry`), every injected drop/reset/block/delay is also recorded
as a ``chaos.injected_*`` counter and a ``fault_injected`` trace event —
so tests can assert "the protocol survived exactly N injected faults"
instead of inferring it from end-state convergence.
"""

from __future__ import annotations

import asyncio
import math
import zlib
from dataclasses import dataclass
from typing import Awaitable, Callable, Iterable, Sequence

import numpy as np

from repro.constants import MIX_DISTRIBUTION
from repro.net.transport import Handler, Transport, TransportError
from repro.obs import Registry

__all__ = [
    "EdgeFaults",
    "Window",
    "FaultDecision",
    "FaultPlan",
    "FaultyTransport",
    "VirtualClock",
]


@dataclass(frozen=True)
class EdgeFaults:
    """Fault parameters applied to requests crossing one edge.

    ``drop_rate`` loses the request before delivery; ``reset_rate``
    delivers it but loses the reply (a mid-stream connection reset, so
    server state may have changed — exactly the at-most-once ambiguity
    real networks have).  Latency is drawn uniformly from
    ``[latency_min_s, latency_max_s]`` per request; ``bandwidth_Bps``
    (0 = unlimited) adds a size-proportional transfer delay.
    """

    drop_rate: float = 0.0
    reset_rate: float = 0.0
    latency_min_s: float = 0.0
    latency_max_s: float = 0.0
    bandwidth_Bps: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be a probability")
        if not 0.0 <= self.reset_rate <= 1.0:
            raise ValueError("reset_rate must be a probability")
        if self.latency_min_s < 0 or self.latency_max_s < self.latency_min_s:
            raise ValueError("latency window must satisfy 0 <= min <= max")
        if self.bandwidth_Bps < 0:
            raise ValueError("bandwidth_Bps must be >= 0 (0 = unlimited)")


@dataclass(frozen=True)
class Window:
    """Half-open time window ``[start, end)`` on the plan's clock."""

    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("window end must be >= start")

    def contains(self, t: float) -> bool:
        """Whether instant ``t`` falls inside the window."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one request: see :meth:`FaultPlan.decide`."""

    blocked: str | None = None  # reason the edge is unusable, or None
    drop: bool = False
    reset: bool = False
    delay_s: float = 0.0


class FaultPlan:
    """A seeded, scriptable schedule of network faults.

    One plan is shared by every :class:`FaultyTransport` of a community.
    Time comes from the injectable ``clock`` (default: a frozen zero
    clock, so un-windowed faults apply always); partitions and crash
    windows are evaluated against it.  Randomness is per-edge: edge
    ``(src, dst)`` gets its own generator seeded from ``(seed, src,
    dst)``, so adding traffic on one edge never perturbs another edge's
    fault sequence.
    """

    def __init__(
        self,
        seed: int = 0,
        default: EdgeFaults | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.seed = int(seed)
        self.clock = clock or (lambda: 0.0)
        #: windowed default fault rules, last matching window wins.
        self._defaults: list[tuple[Window, EdgeFaults]] = []
        if default is not None:
            self._defaults.append((Window(), default))
        #: per-edge overrides, consulted before the defaults.
        self._edges: dict[tuple[str, str], list[tuple[Window, EdgeFaults]]] = {}
        #: directed blocked pairs: (src group, dst group, window).
        self._partitions: list[tuple[frozenset[str], frozenset[str], Window]] = []
        #: per-address crash windows (peer down: unreachable, not calling).
        self._down: dict[str, list[Window]] = {}
        #: per-address bandwidth caps (bytes/second).
        self._bandwidth: dict[str, float] = {}
        self._edge_rngs: dict[tuple[str, str], np.random.Generator] = {}
        # Counters for tests and demos that audit injected behaviour.
        self.delivered = 0
        self.dropped = 0
        self.resets = 0
        self.blocked = 0
        self.delay_total_s = 0.0

    # -- scripting -----------------------------------------------------------

    def set_default(
        self, faults: EdgeFaults, start: float = 0.0, end: float = math.inf
    ) -> None:
        """Apply ``faults`` to every edge during ``[start, end)``."""
        self._defaults.append((Window(start, end), faults))

    def set_edge(
        self,
        src: str,
        dst: str,
        faults: EdgeFaults,
        start: float = 0.0,
        end: float = math.inf,
    ) -> None:
        """Override the faults of the directed edge ``src -> dst``."""
        self._edges.setdefault((src, dst), []).append((Window(start, end), faults))

    def partition(
        self,
        group_a: Iterable[str],
        group_b: Iterable[str],
        start: float = 0.0,
        end: float = math.inf,
        symmetric: bool = True,
    ) -> None:
        """Block all traffic from ``group_a`` to ``group_b`` during
        ``[start, end)``; with ``symmetric`` (a 2-way partition) the
        reverse direction is blocked too.  ``end`` is the heal time."""
        a, b = frozenset(group_a), frozenset(group_b)
        window = Window(start, end)
        self._partitions.append((a, b, window))
        if symmetric:
            self._partitions.append((b, a, window))

    def crash(self, address: str, start: float, end: float = math.inf) -> None:
        """Take the peer at ``address`` down during ``[start, end)``:
        nothing reaches it and nothing it sends gets out."""
        self._down.setdefault(address, []).append(Window(start, end))

    def set_bandwidth(self, address: str, bytes_per_second: float) -> None:
        """Cap the access link of ``address`` (both directions)."""
        if bytes_per_second <= 0:
            raise ValueError("bandwidth must be positive")
        self._bandwidth[address] = bytes_per_second

    def assign_mix_bandwidth(
        self, addresses: Sequence[str]
    ) -> dict[str, float]:
        """Assign each address a link speed drawn from the Table 2 MIX
        distribution (Saroiu et al.), deterministically from the seed.
        Returns the assignment for inspection."""
        rng = np.random.default_rng([self.seed, 0xB0_5EED])
        fractions = np.array([f for f, _ in MIX_DISTRIBUTION])
        speeds = [s for _, s in MIX_DISTRIBUTION]
        picks = rng.choice(len(speeds), size=len(addresses), p=fractions)
        for address, pick in zip(addresses, picks):
            self._bandwidth[address] = speeds[int(pick)]
        return {a: self._bandwidth[a] for a in addresses}

    # -- evaluation ----------------------------------------------------------

    def is_down(self, address: str, now: float | None = None) -> bool:
        """Whether ``address`` is inside one of its crash windows."""
        t = self.clock() if now is None else now
        return any(w.contains(t) for w in self._down.get(address, ()))

    def _partitioned(self, src: str, dst: str, now: float) -> bool:
        return any(
            src in a and dst in b and w.contains(now)
            for a, b, w in self._partitions
        )

    def _faults_for(self, src: str, dst: str, now: float) -> EdgeFaults:
        # Most recently scripted matching rule wins; edge overrides beat
        # the defaults.
        for rules in (self._edges.get((src, dst), []), self._defaults):
            for window, faults in reversed(rules):
                if window.contains(now):
                    return faults
        return EdgeFaults()

    def _rng_for(self, src: str, dst: str) -> np.random.Generator:
        key = (src, dst)
        rng = self._edge_rngs.get(key)
        if rng is None:
            rng = np.random.default_rng(
                [self.seed, zlib.crc32(src.encode()), zlib.crc32(dst.encode())]
            )
            self._edge_rngs[key] = rng
        return rng

    def decide(self, src: str, dst: str, num_bytes: int) -> FaultDecision:
        """Decide the fate of one ``num_bytes`` request ``src -> dst``.

        The drop, reset, and latency draws are taken unconditionally so
        the per-edge random stream depends only on how many requests have
        crossed the edge, not on which faults were configured.
        """
        now = self.clock()
        if self.is_down(dst, now):
            return FaultDecision(blocked=f"peer {dst} is down")
        if self.is_down(src, now):
            return FaultDecision(blocked=f"peer {src} is down")
        if self._partitioned(src, dst, now):
            return FaultDecision(blocked=f"{src} -> {dst} partitioned")
        faults = self._faults_for(src, dst, now)
        rng = self._rng_for(src, dst)
        drop_draw = float(rng.random())
        reset_draw = float(rng.random())
        latency_draw = float(rng.random())
        delay = faults.latency_min_s + latency_draw * (
            faults.latency_max_s - faults.latency_min_s
        )
        bandwidths = [
            bw
            for bw in (
                faults.bandwidth_Bps,
                self._bandwidth.get(src, 0.0),
                self._bandwidth.get(dst, 0.0),
            )
            if bw > 0
        ]
        if bandwidths:
            delay += num_bytes / min(bandwidths)
        drop = drop_draw < faults.drop_rate
        reset = (not drop) and reset_draw < faults.reset_rate
        return FaultDecision(drop=drop, reset=reset, delay_s=delay)


class FaultyTransport(Transport):
    """A :class:`Transport` decorator that injects a :class:`FaultPlan`.

    Composes over both :class:`~repro.net.transport.LoopbackTransport`
    and :class:`~repro.net.transport.TcpTransport`.  The endpoint's own
    served address names the source side of each edge (``name`` overrides
    it, e.g. for pure clients); ``sleep`` is how injected latency is
    awaited — pass :meth:`VirtualClock.sleep` for virtual-time tests.
    """

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        *,
        name: str | None = None,
        sleep: Callable[[float], Awaitable[None]] | None = None,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self.name = name
        self._sleep = sleep or asyncio.sleep

    def bind_registry(self, registry: Registry) -> None:
        """Bind this decorator *and* the wrapped transport, so injected
        faults and real traffic land in one registry."""
        super().bind_registry(registry)
        self.inner.bind_registry(registry)

    def _count_fault(self, kind: str, dst: str, **fields) -> None:
        reg = self.registry
        if reg is not None:
            reg.counter(
                "chaos", f"injected_{kind}_total", f"injected {kind} faults"
            ).inc()
            reg.emit("fault_injected", fault=kind, src=self.name, dst=dst, **fields)

    async def serve(self, address: str, handler: Handler) -> str:
        """Serve through the inner transport; the bound address becomes
        this endpoint's edge-source name (unless one was given)."""
        bound = await self.inner.serve(address, handler)
        if self.name is None:
            self.name = bound
        return bound

    async def request(self, address: str, body: bytes) -> bytes:
        """One RPC with the plan's faults applied on this edge."""
        plan = self.plan
        src = self.name or "client"
        decision = plan.decide(src, address, len(body))
        if decision.blocked is not None:
            plan.blocked += 1
            self._count_fault("blocked", address, reason=decision.blocked)
            raise TransportError(f"chaos: {decision.blocked}")
        if decision.delay_s > 0.0:
            plan.delay_total_s += decision.delay_s
            if self.registry is not None:
                self.registry.counter(
                    "chaos",
                    "injected_delay_seconds_total",
                    "cumulative injected latency",
                ).inc(decision.delay_s)
            await self._sleep(decision.delay_s)
        if decision.drop:
            plan.dropped += 1
            self._count_fault("drops", address)
            raise TransportError(
                f"chaos: request {src} -> {address} dropped"
            )
        reply = await self.inner.request(address, body)
        if decision.reset:
            plan.resets += 1
            self._count_fault("resets", address)
            raise TransportError(
                f"chaos: connection {src} -> {address} reset mid-stream"
            )
        plan.delivered += 1
        return reply

    async def close(self) -> None:
        """Close the wrapped transport."""
        await self.inner.close()


class VirtualClock:
    """A monotonically advancing fake clock for deterministic chaos runs.

    Pass the instance itself as a node's ``clock`` (it is callable) and
    its :meth:`sleep` as a :class:`FaultyTransport`'s sleeper: injected
    latency then advances virtual time instantly, so a scenario with
    minutes of simulated jitter finishes in real milliseconds and its
    outcome depends only on the seeds, never on host scheduling.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        """Advance virtual time by ``seconds`` (>= 0); returns the time."""
        if seconds < 0:
            raise ValueError("time only moves forward")
        self.now += seconds
        return self.now

    async def sleep(self, seconds: float) -> None:
        """Advance virtual time, yielding once to the event loop."""
        if seconds > 0:
            self.now += seconds
        await asyncio.sleep(0)
