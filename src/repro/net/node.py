"""`NetworkPeer`: one PlanetP peer as a real network process.

Wraps the library peer (:class:`~repro.core.peer.PlanetPPeer` — data
store, inverted index, Bloom filter, replicated directory) behind an
asyncio server loop and runs the Section 3 gossip protocol over a real
:class:`~repro.net.transport.Transport`.  Where the simulator's
:class:`~repro.gossip.simpeer.GossipPeer` moves byte *counts*, this node
moves the actual bytes: join rumors carry member records plus compressed
Bloom filters, update rumors carry Golomb-coded filter diffs, and the
anti-entropy digests are the same incremental XOR the simulator uses
(:func:`~repro.gossip.directory.mix_rumor_id`), so a simulated and a real
directory are directly comparable.

Replica maintenance is monotone: filters only grow, diffs are sets of
newly-set bits, and snapshots/records are merged by union — so rumors can
arrive in any order and every replica still converges to the publisher's
exact filter.  (Shrinking a filter after document removal requires a full
regeneration, which this layer does not re-gossip yet.)

Liveness follows the paper: departures are never announced; a failed
contact marks the target offline locally, and a member continuously
offline for ``t_dead_s`` (T_Dead) is dropped from the directory.

Every node is observable through a :class:`~repro.obs.Registry`
(defaulting to the process-global one): gossip rounds by mode, rumors
minted/learned, hot-queue depth, directory size, contact failures and
T_Dead expiries, plus running totals of real encoded gossip bytes next
to the Table-2 model's prediction for the same messages — so the
paper's bandwidth claims are checkable against live sockets.  A
``StatsRequest`` frame polls the registry remotely; protocol moments
land in the registry's trace ring (``round_started``, ``rumor_pushed``,
``ae_triggered``, ``peer_offline`` ...).
"""

from __future__ import annotations

import asyncio
import contextlib
import re
import struct
import time
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.bloom.diff import BloomDiff, apply_diff, diff_filters
from repro.bloom.filter import BloomFilter
from repro.constants import (
    AnalyticsConfig,
    BloomConfig,
    ContentConfig,
    GossipConfig,
    NetConfig,
    PartialViewConfig,
    StoreConfig,
)
from repro.core.peer import PeerEntry, PlanetPPeer
from repro.core.search import exhaustive_local_match, score_local_documents
from repro.gossip.directory import digest_of_rids, mix_rumor_id
from repro.gossip.intervals import IntervalPolicy
from repro.gossip.messages import MessageSizer
from repro.gossip.partialview import PartialView
from repro.gossip.rumor import RumorKind
from repro.gossip.wire import (
    ANALYTICS_MESSAGES,
    CONTENT_MESSAGES,
    GOSSIP_MESSAGES,
    PARTIALVIEW_MESSAGES,
    AENothing,
    AERecent,
    AERequest,
    AESummary,
    BrowseRequest,
    ChunkPush,
    ChunkRequest,
    JoinRequest,
    JoinSnapshot,
    ManifestPush,
    ManifestRequest,
    PeerRecord,
    PullRequest,
    RumorData,
    RumorPush,
    RumorReply,
    ShardMatchQuery,
    ShardMatchResponse,
    ShardSummaryEntry,
    ShardSummaryReply,
    ShardSummaryRequest,
    SketchExchange,
    SnapshotEntry,
    SubscribeRequest,
    TopTermsRequest,
    Unsubscribe,
    ViewExchange,
    WireRumor,
)
from repro.net import codec
from repro.net.codec import (
    CodecError,
    ErrorReply,
    ExhaustiveQuery,
    ExhaustiveResponse,
    PublishAck,
    PublishRequest,
    RankedQuery,
    RankedResponse,
    SnippetFetch,
    SnippetResponse,
    StatsRequest,
    StatsResponse,
)
from repro.net.transport import TcpTransport, Transport, TransportError
from repro.obs import Counter, Registry, global_registry
from repro.serve.subscriptions import SubscriptionManager
from repro.store import (
    CheckpointEntry,
    ChunkStore,
    DirectoryCheckpoint,
    PersistentDataStore,
    load_checkpoint,
    save_checkpoint,
)
from repro.text.analyzer import Analyzer
from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet

if TYPE_CHECKING:
    from repro.content.plane import ContentPlane

__all__ = ["NetworkPeer", "RID_RESTART_GAP"]

#: How far past the checkpointed rumor sequence a warm restart resumes
#: minting.  Rumors minted between the last checkpoint write and a crash
#: are unrecorded locally but already known to other members; jumping the
#: sequence far beyond anything a checkpoint interval could mint keeps
#: post-restart rids from colliding with them.
RID_RESTART_GAP = 1 << 16


class NetworkPeer:
    """A PlanetP community member gossiping and serving over sockets."""

    def __init__(
        self,
        peer_id: int,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        transport: Transport | None = None,
        analyzer: Analyzer | None = None,
        bloom_config: BloomConfig | None = None,
        gossip_config: GossipConfig | None = None,
        net_config: NetConfig | None = None,
        seed: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        registry: Registry | None = None,
        data_dir: str | Path | None = None,
        store_config: StoreConfig | None = None,
        partial_view: PartialViewConfig | None = None,
        content_config: ContentConfig | None = None,
        analytics_config: AnalyticsConfig | None = None,
    ) -> None:
        if not 0 <= peer_id < 1 << 16:
            raise ValueError("peer_id must fit in 16 bits for rumor-id minting")
        self.config = gossip_config or GossipConfig()
        self.net_config = net_config or NetConfig()
        self.bloom_config = bloom_config or BloomConfig()
        self.analyzer = analyzer or Analyzer()
        self.transport = transport or TcpTransport(self.net_config)
        self.peer = PlanetPPeer(
            peer_id,
            address=f"{host}:{port}",
            analyzer=self.analyzer,
            bloom_config=self.bloom_config,
        )
        self.clock = clock
        self.rng = np.random.default_rng(peer_id if seed is None else seed)
        #: rumor knowledge (the net-side DirectoryView): ids + XOR digest.
        self.known: set[int] = set()
        self.digest = 0
        #: stored rumors by id — payloads kept so pulls can be served.
        self.rumors: dict[int, WireRumor] = {}
        #: actively-spread rumors: rid -> consecutive already-knew count.
        self.hot: dict[int, int] = {}
        #: recently retired rumor ids for the partial-AE piggyback.
        self.recent: deque[int] = deque(maxlen=self.config.partial_ae_recent)
        #: recently learned ids, anti-entropy's cheap first level.
        self.recent_learned: deque[int] = deque(maxlen=self.config.ae_recent_window)
        self.intervals = IntervalPolicy(self.config)
        self.round_counter = 0
        #: wall-clock time each believed-offline member was marked so.
        self.offline_since: dict[int, float] = {}
        #: consecutive failed contacts per member, feeding the backoff.
        self.contact_failures: dict[int, int] = {}
        #: earliest clock time we will pick a member for a rumor round
        #: again after failures (anti-entropy ignores this, so recovered
        #: peers are always rediscovered and rejoin heals).
        self.contact_backoff_until: dict[int, float] = {}
        self._host = host
        self._port = port
        self.address: str | None = None
        self.running = False
        self._gossip_task: asyncio.Task | None = None
        #: next rumor sequence number (the low half of minted rids).  An
        #: int rather than an iterator so a directory checkpoint can
        #: persist it — reusing a previous life's rid would make a warm
        #: restart's REJOIN rumor "already known" everywhere and unspreadable.
        self._rid_seq = 0
        #: the filter state as of the last minted update rumor.
        self._last_gossiped = BloomFilter(
            self.bloom_config.num_bits, self.bloom_config.num_hashes
        )
        #: (store filter object, its version) at the last flush — lets
        #: no-change flushes skip the full bit-array comparison.  The
        #: strong object reference keeps the identity check sound.
        self._last_flushed: tuple[BloomFilter, int] | None = None
        #: observability home (metrics + trace); shared process-wide by
        #: default so transport/bloom/chaos instruments land beside ours.
        self.obs = registry if registry is not None else global_registry()
        self.transport.bind_registry(self.obs)
        self._sizer = MessageSizer(self.config)
        self._started_at: float | None = None
        #: cached node-component instruments; gossip rounds are the hot
        #: path and must not pay a registry lookup per increment.
        self._node_counters: dict[str, Counter] = {}
        self._g_hot = self.obs.gauge(
            "node", "hot_rumors", "actively-spread rumor count"
        )
        self._g_directory = self.obs.gauge(
            "node", "directory_size", "known community members"
        )
        self._g_known = self.obs.gauge(
            "node", "known_rumors", "distinct rumor ids seen"
        )
        self._c_real_bytes = self.obs.counter(
            "node",
            "gossip_real_bytes_total",
            "encoded gossip bytes (requests sent + replies served)",
        )
        self._c_model_bytes = self.obs.counter(
            "node",
            "gossip_model_bytes_total",
            "Table-2 model prediction for the same gossip messages",
        )
        #: sharded partial-view state (None = flat full-replication mode).
        self.pview: PartialView | None = (
            PartialView(peer_id, partial_view, self.bloom_config)
            if partial_view is not None
            else None
        )
        self._c_pv_real_bytes = self.obs.counter(
            "node",
            "partialview_real_bytes_total",
            "encoded partial-view maintenance/fan-out bytes",
        )
        self._c_pv_model_bytes = self.obs.counter(
            "node",
            "partialview_model_bytes_total",
            "sizer prediction for the same partial-view messages",
        )
        self._c_content_real_bytes = self.obs.counter(
            "node",
            "content_real_bytes_total",
            "encoded content-plane transfer/replication bytes",
        )
        self._c_content_model_bytes = self.obs.counter(
            "node",
            "content_model_bytes_total",
            "sizer prediction for the same content messages",
        )
        self._c_analytics_real_bytes = self.obs.counter(
            "node",
            "analytics_real_bytes_total",
            "encoded analytics-plane sketch/browse bytes",
        )
        self._c_analytics_model_bytes = self.obs.counter(
            "node",
            "analytics_model_bytes_total",
            "sizer prediction for the same analytics messages",
        )
        #: per-wire-type real/model/message counters (the "wire" component
        #: of the stats export), cached by message class — the accounting
        #: path runs per message and must not pay registry lookups.
        self._wire_counters: dict[type, tuple[Counter, Counter, Counter]] = {}
        self._g_filters_held = self.obs.gauge(
            "node", "full_filters_held", "Bloom filters stored in full (incl. own)"
        )
        self._g_filter_bytes = self.obs.gauge(
            "node",
            "directory_filter_bytes",
            "bytes pinned by full filters plus shard summaries",
        )
        #: durable persistence (repro.store); None = pure-RAM node.
        self.store_config = store_config or StoreConfig()
        self.persistence: PersistentDataStore | None = None
        self._checkpoint_path: Path | None = None
        #: directory entries restored from the checkpoint at construction.
        self.restored_members = 0
        if data_dir is not None:
            data_dir = Path(data_dir)
            self.persistence = PersistentDataStore(
                data_dir,
                analyzer=self.analyzer,
                bloom_config=self.bloom_config,
                config=self.store_config,
                registry=self.obs,
            )
            # Duck-typed drop-in for the peer's LocalDataStore: every
            # publish/remove now goes through the WAL before it is acked.
            self.peer.store = self.persistence
            self._checkpoint_path = data_dir / "directory.ckpt"
            # Give every incarnation of this data dir a disjoint rumor-id
            # band: a life that crashed before its first checkpoint still
            # must not re-mint its predecessors' rids (a reused rid is
            # "already known" community-wide and the JOIN/REJOIN rumor
            # carrying it could never spread).
            self._rid_seq = (
                self.persistence.incarnation * RID_RESTART_GAP
            ) & 0xFFFFFFFF
            self._restore_checkpoint()
        #: persistent queries posted over the wire (repro.serve); durable
        #: alongside the directory checkpoint when a data dir is set.
        self.subscriptions = SubscriptionManager(
            self,
            checkpoint_path=(
                data_dir / "subscriptions.ckpt" if data_dir is not None else None
            ),
        )
        # Imported here, not at module scope: repro.content.retrieval pulls
        # in repro.serve, which (via the scheduler's search client) imports
        # this module — a top-level import would deadlock package init.
        # repro.analytics reaches repro.serve the same way (browse runs
        # through the scheduler's cache), hence the same treatment.
        from repro.analytics.aggregate import AnalyticsPlane
        from repro.content.plane import ContentPlane

        #: the wire-level content plane (repro.content): every publish is
        #: chunked into a crash-safe store and served to ChunkRequests;
        #: k-way replication to ring successors runs only when
        #: ``content_config.replicas > 0`` (off by default).
        self.content_config = content_config or ContentConfig()
        self.content: ContentPlane = ContentPlane(
            self,
            self.content_config,
            ChunkStore(data_dir / "chunks" if data_dir is not None else None),
        )
        #: gossip-powered frequent-term mining + popularity counters
        #: (repro.analytics); off by default — a node pays nothing for
        #: analytics unless explicitly configured.
        self.analytics = AnalyticsPlane(self, analytics_config)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0, help: str = "") -> None:
        counter = self._node_counters.get(name)
        if counter is None:
            counter = self._node_counters[name] = self.obs.counter("node", name, help)
        counter.inc(amount)

    def _account_gossip(self, msg: object, body: bytes) -> None:
        """Track one encoded gossip message: real bytes vs Table-2 model.

        The same two totals the simulator reasons with, now measured on
        a live node — their ratio is the model-agreement envelope the
        validation suite pins to [0.5, 2.0].
        """
        if isinstance(msg, GOSSIP_MESSAGES):
            pair = (self._c_real_bytes, self._c_model_bytes)
        elif isinstance(msg, PARTIALVIEW_MESSAGES):
            # Outside the Table-2 gossip totals (the flat model must stay
            # exactly the paper's inventory) but measured the same way.
            pair = (self._c_pv_real_bytes, self._c_pv_model_bytes)
        elif isinstance(msg, CONTENT_MESSAGES):
            # Content transfer is likewise outside the gossip model but
            # pinned to the same real-vs-model agreement envelope.
            pair = (self._c_content_real_bytes, self._c_content_model_bytes)
        elif isinstance(msg, ANALYTICS_MESSAGES):
            pair = (self._c_analytics_real_bytes, self._c_analytics_model_bytes)
        else:
            return
        model = self._sizer.model_size(msg)
        pair[0].inc(len(body))
        pair[1].inc(model)
        trio = self._wire_counters.get(type(msg))
        if trio is None:
            name = re.sub(r"(?<!^)(?=[A-Z])", "_", type(msg).__name__).lower()
            trio = self._wire_counters[type(msg)] = (
                self.obs.counter(
                    "wire", f"{name}_real_bytes_total", f"encoded {name} bytes"
                ),
                self.obs.counter(
                    "wire", f"{name}_model_bytes_total", f"modeled {name} bytes"
                ),
                self.obs.counter(
                    "wire", f"{name}_messages_total", f"{name} messages accounted"
                ),
            )
        trio[0].inc(len(body))
        trio[1].inc(model)
        trio[2].inc()

    def stats_response(self) -> StatsResponse:
        """The node's registry flattened into a wire-ready reply."""
        uptime = 0.0
        if self._started_at is not None:
            uptime = max(0.0, self.clock() - self._started_at)
        return StatsResponse(self.peer_id, uptime, tuple(self.obs.samples()))

    # ------------------------------------------------------------------
    # persistence (repro.store)
    # ------------------------------------------------------------------

    def _restore_checkpoint(self) -> None:
        """Seed the directory and rumor knowledge from the last checkpoint.

        A missing/corrupt checkpoint, or one written by a different peer
        id (a reused data dir), is silently a cold start.  Restored
        believed-offline members get their T_Dead clocks restarted now —
        the persisted timestamps are from a previous life.
        """
        ckpt = load_checkpoint(self._checkpoint_path)
        if ckpt is None or ckpt.peer_id != self.peer_id:
            return
        now = self.clock()
        for e in ckpt.entries:
            if e.peer_id == self.peer_id:
                continue
            bf: BloomFilter | None = None
            if e.bloom:
                try:
                    bf = BloomFilter.from_compressed(
                        e.bloom, num_hashes=self.bloom_config.num_hashes
                    )
                except ValueError:
                    bf = None  # damaged replica: re-learned over gossip
            self.peer.directory[e.peer_id] = PeerEntry(
                e.peer_id, e.address, e.online, bf, e.filter_version
            )
            if not e.online:
                self.offline_since[e.peer_id] = now
            self.restored_members += 1
        self.known.update(ckpt.known_rids)
        # Resume minting rumor ids strictly after every id of the previous
        # life.  The gap covers rumors minted between the last checkpoint
        # write and the crash (unrecorded, but known to other members) —
        # reusing one of those would make our REJOIN rumor "already known"
        # everywhere and therefore unspreadable.
        own_seqs = [
            rid & 0xFFFFFFFF
            for rid in self.known
            if (rid >> 32) == self.peer_id
        ]
        resume_at = max([ckpt.next_rid_seq, *(s + 1 for s in own_seqs)])
        self._rid_seq = max(self._rid_seq, resume_at + RID_RESTART_GAP)
        # Recompute the anti-entropy digest from the restored id set; it
        # is bit-identical to the incrementally maintained one, so the
        # first AE digest comparison with an unchanged community answers
        # "nothing new" instead of triggering a full summary transfer.
        self.digest = digest_of_rids(list(self.known))
        staleness = max(0.0, time.time() - ckpt.written_at)
        self.obs.gauge(
            "store",
            "checkpoint_staleness_seconds",
            "age of the directory checkpoint when it was restored",
        ).set(staleness)
        self.obs.gauge(
            "store",
            "checkpoint_members_restored",
            "directory entries seeded from the checkpoint",
        ).set(self.restored_members)
        self.obs.emit(
            "checkpoint_restored",
            peer=self.peer_id,
            members=self.restored_members,
            rumors=len(ckpt.known_rids),
            staleness_s=staleness,
        )

    def write_checkpoint(self) -> int:
        """Persist the replicated directory; returns bytes written.

        A no-op (returns 0) without a data dir; write failures are
        counted, not raised — a full disk must not stop gossip.
        """
        if self._checkpoint_path is None:
            return 0
        entries = tuple(
            CheckpointEntry(
                pid,
                entry.address,
                entry.online,
                entry.filter_version,
                entry.bloom_filter.to_compressed()
                if entry.bloom_filter is not None
                else b"",
            )
            for pid, entry in sorted(self.peer.directory.items())
            if pid != self.peer_id
        )
        checkpoint = DirectoryCheckpoint(
            self.peer_id,
            time.time(),
            entries,
            tuple(sorted(self.known)),
            self._rid_seq,
        )
        try:
            nbytes = save_checkpoint(self._checkpoint_path, checkpoint)
        except OSError:
            self.obs.counter(
                "store", "checkpoint_errors_total", "failed checkpoint writes"
            ).inc()
            return 0
        self.obs.counter(
            "store", "checkpoint_writes_total", "directory checkpoints written"
        ).inc()
        self.obs.counter(
            "store", "checkpoint_bytes_total", "bytes written across checkpoints"
        ).inc(nbytes)
        self.obs.emit(
            "checkpoint_written", peer=self.peer_id, members=len(entries), bytes=nbytes
        )
        return nbytes

    # ------------------------------------------------------------------
    # identity & lifecycle
    # ------------------------------------------------------------------

    @property
    def peer_id(self) -> int:
        """This node's community-wide peer id."""
        return self.peer.peer_id

    def _mint_rid(self) -> int:
        """Globally-unique 48-bit rumor id: 16-bit peer id + 32-bit seq."""
        seq = self._rid_seq
        self._rid_seq += 1
        return (self.peer_id << 32) | (seq & 0xFFFFFFFF)

    def _own_record(self) -> PeerRecord:
        return PeerRecord(
            self.peer_id,
            self.address or f"{self._host}:{self._port}",
            True,
            self.peer.store.filter_version,
        )

    async def start(self) -> str:
        """Bind the server socket and begin answering requests.

        Returns the bound address.  The gossip loop is started separately
        by :meth:`run` (tests often drive :meth:`gossip_round` directly).
        """
        self.address = await self.transport.serve(
            f"{self._host}:{self._port}", self._serve
        )
        self.peer.address = self.address
        self.peer.directory[self.peer_id].address = self.address
        self.running = True
        if self._started_at is None:
            self._started_at = self.clock()
        if self.persistence is not None and (
            self.restored_members > 0 or self.persistence.last_recovery.documents > 0
        ):
            # Warm restart: announce ourselves (record + full filter) so
            # the community relearns our address without a re-join, and
            # replicas recover any updates lost to checkpoint staleness.
            self.announce_rejoin()
        if self.subscriptions.restored_subscriptions:
            # Rumors that arrived and were checkpointed before the crash
            # never re-apply on restore, so their publishes would never
            # mark anyone dirty — probe the whole directory once instead
            # (the delivered sets keep already-seen documents silent).
            self.subscriptions.mark_all_dirty()
        return self.address

    def run(self) -> asyncio.Task:
        """Start the background gossip loop (one round per interval)."""
        if self._gossip_task is None or self._gossip_task.done():
            self._gossip_task = asyncio.create_task(self._gossip_loop())
        return self._gossip_task

    async def _gossip_loop(self) -> None:
        # De-synchronize peers: first round fires inside one interval.
        await asyncio.sleep(float(self.rng.uniform(0.0, self.intervals.interval)))
        while self.running:
            with contextlib.suppress(TransportError, CodecError):
                await self.gossip_round()
            await asyncio.sleep(self.intervals.interval)

    async def stop(self) -> None:
        """Graceful leave: stop gossiping and close the server.

        Cancels an in-flight :meth:`gossip_round` cleanly and *awaits*
        the cancelled loop task before closing the transport, so no
        pending task survives to be garbage-collected ("Task was
        destroyed but it is pending!").  Safe to call more than once.

        Per the paper, departure is not announced — the community
        discovers it through failed contacts and T_Dead expiry.
        """
        self.running = False
        task, self._gossip_task = self._gossip_task, None
        if task is not None:
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task
        await self.subscriptions.stop()
        await self.transport.close()
        if self._checkpoint_path is not None:
            self.write_checkpoint()
        if self.persistence is not None:
            # Final snapshot: the next start recovers without WAL replay.
            self.persistence.close()

    # ------------------------------------------------------------------
    # joining
    # ------------------------------------------------------------------

    async def join(self, bootstrap_address: str) -> None:
        """Join the community via the peer at ``bootstrap_address``.

        Introduces ourselves (record + compressed filter, minting our own
        JOIN rumor) and adopts the bootstrap's directory snapshot.
        """
        record = self._own_record()
        bloom = self.peer.store.bloom_filter.to_compressed()
        rid = self._mint_rid()
        now = self.clock()
        rumor = WireRumor(
            rid, RumorKind.JOIN, self.peer_id, now,
            codec.encode_member_payload(record, bloom),
        )
        self._learn_rumor(rumor, make_hot=True)
        request = JoinRequest(record, bloom, rid, now)
        frame = codec.encode(request)
        self._account_gossip(request, frame)
        body = await self.transport.request(bootstrap_address, frame)
        reply = codec.decode(body)
        if not isinstance(reply, JoinSnapshot):
            raise TransportError(f"bootstrap sent {type(reply).__name__}, not a snapshot")
        self._install_snapshot(reply)
        if self.pview is not None:
            # Warm the shard summaries right away: until the rotating
            # maintenance step has run, searches fan out to every
            # unknown shard, so one extra RPC here pays for itself.
            await self._pull_summaries(bootstrap_address)

    def _install_snapshot(self, snapshot: JoinSnapshot) -> None:
        for entry in snapshot.entries:
            if entry.record.peer_id == self.peer_id:
                continue
            bf = (
                BloomFilter.from_compressed(
                    entry.bloom, num_hashes=self.bloom_config.num_hashes
                )
                if entry.bloom
                else None
            )
            self._install_member(entry.record, bf, online=entry.record.online)
        # Adopt the known-id set so digests converge.  Payloads for these
        # historical rumors are not carried (current state came with the
        # entries); we simply cannot serve pulls for them — peers that
        # stored them can.
        for rid in snapshot.rids:
            if rid not in self.known:
                self.known.add(rid)
                self.digest ^= mix_rumor_id(rid)
                self.recent_learned.append(rid)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------

    def publish(self, item: Document | XMLSnippet) -> Document:
        """Publish a document locally and gossip the filter growth."""
        doc = self.peer.publish(item)
        # Chunk the content for the transfer plane: from here on any
        # member (or a directory-less client) can fetch the bytes by doc
        # id; replication to ring successors happens in gossip rounds.
        self.content.add_local(doc.doc_id, doc.text.encode("utf-8"))
        self.flush_updates()
        self.subscriptions.mark_dirty(self.peer_id)
        return doc

    def flush_updates(self) -> WireRumor | None:
        """Mint a BF_UPDATE rumor for filter growth since the last one.

        Returns the minted rumor, or None if the filter is unchanged.
        """
        current = self.peer.store.bloom_filter
        if self._last_flushed is not None:
            held, version = self._last_flushed
            if held is current and version == current.version:
                return None  # not mutated since the last flush
        if current == self._last_gossiped:
            self._last_flushed = (current, current.version)
            return None
        diff = diff_filters(self._last_gossiped, current)
        payload = codec.encode_update_payload(
            self.peer.store.filter_version, diff.to_bytes()
        )
        rumor = WireRumor(
            self._mint_rid(), RumorKind.BF_UPDATE, self.peer_id, self.clock(), payload
        )
        self._last_gossiped = current.copy()
        self._last_flushed = (current, current.version)
        self._learn_rumor(rumor, make_hot=True)
        return rumor

    def announce_rejoin(self) -> WireRumor:
        """Mint a REJOIN rumor carrying our record and full filter
        (used after coming back online at a possibly new address)."""
        current = self.peer.store.bloom_filter
        payload = codec.encode_member_payload(
            self._own_record(), current.to_compressed()
        )
        rumor = WireRumor(
            self._mint_rid(), RumorKind.REJOIN, self.peer_id, self.clock(), payload
        )
        self._learn_rumor(rumor, make_hot=True)
        # The rumor carries the whole filter, so future BF_UPDATE diffs
        # only need to cover growth from here.
        self._last_gossiped = current.copy()
        self._last_flushed = (current, current.version)
        return rumor

    # ------------------------------------------------------------------
    # rumor knowledge
    # ------------------------------------------------------------------

    def _learn_rumor(self, rumor: WireRumor, make_hot: bool) -> bool:
        if rumor.rid in self.known:
            return False
        self.known.add(rumor.rid)
        self.digest ^= mix_rumor_id(rumor.rid)
        self.rumors[rumor.rid] = rumor
        self.recent_learned.append(rumor.rid)
        self._apply_rumor(rumor)
        if make_hot:
            self.hot[rumor.rid] = 0
        self.intervals.reset()
        if rumor.origin == self.peer_id:
            self._count("rumors_minted_total", 1, "rumors this node originated")
        else:
            self._count("rumors_learned_total", 1, "rumors learned from peers")
        return True

    def _apply_rumor(self, rumor: WireRumor) -> None:
        if rumor.origin == self.peer_id:
            return
        if rumor.kind in (RumorKind.JOIN, RumorKind.REJOIN):
            record, bloom = codec.decode_member_payload(rumor.payload)
            bf = (
                BloomFilter.from_compressed(
                    bloom, num_hashes=self.bloom_config.num_hashes
                )
                if bloom
                else None
            )
            self._install_member(record, bf)
        elif rumor.kind is RumorKind.BF_UPDATE:
            version, blob = codec.decode_update_payload(rumor.payload)
            diff = BloomDiff.from_bytes(blob)
            entry = self._ensure_entry(rumor.origin)
            if self.pview is not None and not self.pview.keeps_filter(rumor.origin):
                # Dropped foreign filter: the diff still reaches the
                # shard's coarse summary (diffs are monotone position
                # sets, so OR-ing them in is order-free), and the version
                # bump below keeps the serve cache's directory generation
                # moving on remote publishes even without the full filter.
                self.pview.fold_diff(rumor.origin, diff)
            else:
                if entry.bloom_filter is None:
                    entry.bloom_filter = BloomFilter(
                        self.bloom_config.num_bits, self.bloom_config.num_hashes
                    )
                entry.bloom_filter = apply_diff(entry.bloom_filter, diff)
                if self.pview is not None:
                    # A sampled out-of-shard member's growth must also show
                    # in its shard summary, or summary fan-out would skip
                    # the shard for terms only this member holds.
                    self.pview.fold_filter(rumor.origin, entry.bloom_filter)
            entry.filter_version = max(entry.filter_version, version)
            entry.online = True
        # Gossip is the change feed for standing queries: the origin's
        # content may now match one, so schedule a probe.
        self.subscriptions.mark_dirty(rumor.origin)

    def _ensure_entry(self, peer_id: int) -> PeerEntry:
        entry = self.peer.directory.get(peer_id)
        if entry is None:
            # Address unknown yet; the member's JOIN/REJOIN record will
            # refresh it when it arrives (rumors are unordered).
            entry = PeerEntry(peer_id, "", True, None, -1)
            self.peer.directory[peer_id] = entry
        return entry

    def _install_member(
        self, record: PeerRecord, bf: BloomFilter | None, online: bool = True
    ) -> None:
        """Merge a member record (and optionally its filter) into the
        directory.  ``online=False`` (a summary entry the sender believes
        dead) must not resurrect the member or reset its T_Dead timer —
        only positive evidence (a rumor, a successful contact) does."""
        entry = self._ensure_entry(record.peer_id)
        if record.address:
            entry.address = record.address
        if online:
            entry.online = True
            self.offline_since.pop(record.peer_id, None)
            self.contact_failures.pop(record.peer_id, None)
            self.contact_backoff_until.pop(record.peer_id, None)
        elif not entry.online:
            # Neither we nor the sender believe it is alive: make sure the
            # T_Dead clock is running so the entry eventually expires.
            self.offline_since.setdefault(record.peer_id, self.clock())
        if bf is not None and self.pview is not None:
            # Every foreign filter feeds its shard summary (fold_filter
            # skips the home shard, whose filters stay first-class); the
            # full copy is kept only for home/sampled members.
            self.pview.fold_filter(record.peer_id, bf)
            if not self.pview.maybe_admit(record.peer_id):
                bf = None
        if bf is not None:
            if entry.bloom_filter is None:
                entry.bloom_filter = bf
            else:
                # Filters are monotone; union keeps replicas convergent
                # regardless of rumor arrival order.
                entry.bloom_filter.union_inplace(bf)
        entry.filter_version = max(entry.filter_version, record.filter_version)

    # ------------------------------------------------------------------
    # the gossip round (initiator side)
    # ------------------------------------------------------------------

    async def gossip_round(self) -> None:
        """Run one gossip round: rumor push, or periodic anti-entropy."""
        self.round_counter += 1
        self._expire_dead()
        hot_ids = list(self.hot)
        rumor_mode = bool(hot_ids) and (
            self.round_counter % self.config.anti_entropy_period != 0
        )
        self._count("gossip_rounds_total", 1, "gossip rounds initiated")
        self._g_hot.set(len(self.hot))
        self._g_directory.set(len(self.peer.directory))
        self._g_known.set(len(self.known))
        self.obs.emit(
            "round_started",
            peer=self.peer_id,
            round=self.round_counter,
            mode="rumor" if rumor_mode else "anti-entropy",
        )
        if rumor_mode:
            self._count("rumor_rounds_total", 1, "rounds spent pushing rumors")
            await self._rumor_round(hot_ids)
        else:
            self._count("ae_rounds_total", 1, "rounds spent on anti-entropy")
            await self._ae_round(had_hot=bool(hot_ids))
        if self.pview is not None:
            await self._partialview_round()
        if self.content.active:
            await self.content.maintenance_round()
        if self.analytics.enabled:
            await self.analytics.maintenance_round()
        self._update_filter_gauges()
        if (
            self._checkpoint_path is not None
            and self.round_counter % self.store_config.checkpoint_every_rounds == 0
        ):
            self.write_checkpoint()

    def _pick_target(self, include_offline: bool = False) -> int | None:
        """A random gossip target.

        Rumor rounds talk only to members believed online whose failure
        backoff has elapsed — there is no point burning a rumor push on a
        dead peer.  Anti-entropy rounds (``include_offline``) may pick any
        addressed member, including believed-dead ones: that probe is how
        a silently recovered peer is rediscovered before T_Dead fires.
        """
        now = self.clock()
        candidates = [
            pid
            for pid, entry in self.peer.directory.items()
            if pid != self.peer_id
            and entry.address
            and (
                include_offline
                or (entry.online and now >= self.contact_backoff_until.get(pid, 0.0))
            )
        ]
        if not candidates:
            return None
        return int(candidates[int(self.rng.integers(0, len(candidates)))])

    async def _rumor_round(self, hot_ids: list[int]) -> None:
        target = self._pick_target()
        if target is None:
            return
        self.obs.emit("rumor_pushed", peer=self.peer_id, target=target, count=len(hot_ids))
        reply = await self._request_peer(target, RumorPush(tuple(hot_ids)))
        if not isinstance(reply, RumorReply):
            return
        needed_set = set(reply.needed)
        for rid in hot_ids:
            count = self.hot.get(rid)
            if count is None:
                continue
            if rid in needed_set:
                self.hot[rid] = 0
            else:
                self.hot[rid] = count + 1
                if self.hot[rid] >= self.config.rumor_give_up_count:
                    del self.hot[rid]
                    self.recent.append(rid)
        if reply.needed:
            have = tuple(
                self.rumors[rid] for rid in reply.needed if rid in self.rumors
            )
            if have:
                await self._request_peer(target, RumorData(have))
        missing_piggy = [rid for rid in reply.piggyback if rid not in self.known]
        if missing_piggy:
            self._count(
                "partial_ae_pulls_total", 1, "pulls triggered by AE piggybacks"
            )
            await self._pull_from(target, missing_piggy)

    async def _ae_round(self, had_hot: bool) -> None:
        target = self._pick_target(include_offline=True)
        if target is None:
            return
        self.obs.emit("ae_triggered", peer=self.peer_id, target=target)
        reply = await self._request_peer(target, AERequest(self.digest))
        if isinstance(reply, AENothing):
            if not had_hot:
                self.intervals.record_no_news_contact()
        elif isinstance(reply, AERecent):
            missing = [rid for rid in reply.rids if rid not in self.known]
            if reply.known_count <= len(self.known) + len(missing):
                # The cheap level fully explains the gap.
                if missing:
                    await self._pull_from(target, missing)
                return
            # Diverged beyond the recent window: fetch the full summary.
            self._count(
                "ae_full_summaries_total", 1, "AE escalations to a full summary"
            )
            summary = await self._request_peer(target, PullRequest(()))
            if isinstance(summary, AESummary):
                for record in summary.entries:
                    if record.peer_id != self.peer_id:
                        self._install_member(record, None, online=record.online)
                missing = [rid for rid in summary.rids if rid not in self.known]
                if missing:
                    await self._pull_from(target, missing)

    async def _pull_from(self, target: int, rids: list[int]) -> None:
        reply = await self._request_peer(target, PullRequest(tuple(rids)))
        if isinstance(reply, RumorData):
            for rumor in reply.rumors:
                self._learn_rumor(rumor, make_hot=False)

    async def _request_peer(self, pid: int, msg: object) -> object | None:
        entry = self.peer.directory.get(pid)
        if entry is None or not entry.address:
            return None
        address = entry.address
        try:
            frame = codec.encode(msg)
            self._account_gossip(msg, frame)
            body = await self.transport.request(address, frame)
            reply = codec.decode(body)
        except (TransportError, CodecError):
            self._record_contact(pid, address, ok=False)
            return None
        self._record_contact(pid, address, ok=True)
        return reply

    def _record_contact(self, pid: int, address: str, *, ok: bool) -> None:
        """Turn one RPC outcome into directory liveness evidence — but
        only while the entry still points at the address that was
        contacted.  A JOIN/REJOIN rumor may re-address the peer while an
        RPC is in flight; the late outcome is evidence about the *old*
        incarnation and must not flip the freshly healed entry."""
        entry = self.peer.directory.get(pid)
        if entry is None or entry.address != address:
            return
        if ok:
            self._contact_succeeded(pid, entry)
        else:
            self._contact_failed(pid)

    def _contact_succeeded(self, pid: int, entry: PeerEntry) -> None:
        if not entry.online:
            self.obs.emit("peer_rejoined", peer=self.peer_id, target=pid)
        entry.online = True
        self.offline_since.pop(pid, None)
        self.contact_failures.pop(pid, None)
        self.contact_backoff_until.pop(pid, None)

    def _contact_failed(self, pid: int) -> None:
        entry = self.peer.directory.get(pid)
        if entry is None:
            return
        self._count("contact_failures_total", 1, "failed peer contacts")
        failures = self.contact_failures.get(pid, 0) + 1
        self.contact_failures[pid] = failures
        backoff = min(
            self.config.contact_backoff_base_s * 2.0 ** (failures - 1),
            self.config.contact_backoff_max_s,
        )
        self.contact_backoff_until[pid] = self.clock() + backoff
        if entry.online:
            entry.online = False
            self.offline_since.setdefault(pid, self.clock())
            self.obs.emit(
                "peer_offline", peer=self.peer_id, target=pid, failures=failures
            )

    def _expire_dead(self) -> None:
        now = self.clock()
        dead = [
            pid
            for pid, since in self.offline_since.items()
            if now - since > self.config.t_dead_s
        ]
        for pid in dead:
            del self.offline_since[pid]
            self.contact_failures.pop(pid, None)
            self.contact_backoff_until.pop(pid, None)
            self.peer.drop_peer(pid)
            if self.pview is not None:
                self.pview.forget(pid)
            self.analytics.forget(pid)
            self._count("peers_expired_total", 1, "members dropped at T_Dead")
            self.obs.emit("peer_expired", peer=self.peer_id, target=pid)

    # ------------------------------------------------------------------
    # partial-view maintenance (sharded directory mode)
    # ------------------------------------------------------------------

    def _update_filter_gauges(self) -> None:
        """Per-node directory memory, comparable across both modes: full
        filters held (our own included) plus shard-summary bytes."""
        held = 1 + sum(
            1
            for pid, entry in self.peer.directory.items()
            if pid != self.peer_id and entry.bloom_filter is not None
        )
        nbytes = held * (self.bloom_config.num_bits // 8)
        if self.pview is not None:
            nbytes += self.pview.summary_bytes()
        self._g_filters_held.set(held)
        self._g_filter_bytes.set(nbytes)

    def _pview_sync(self) -> None:
        """Reconcile the sharded search matrix with the filters we hold."""
        assert self.pview is not None
        filters = [(self.peer_id, self.peer.store.bloom_filter)]
        filters += [
            (pid, entry.bloom_filter)
            for pid, entry in self.peer.directory.items()
            if pid != self.peer_id and entry.bloom_filter is not None
        ]
        self.pview.sync(filters)

    async def _partialview_round(self) -> None:
        """One partial-view maintenance step per gossip round, rotating
        through the three exchanges: foreign summary refresh, membership
        record trade, and home-shard filter backfill."""
        step = self.round_counter % 3
        if step == 0:
            await self._refresh_summaries()
        elif step == 1:
            await self._exchange_views()
        else:
            await self._backfill_home()

    def _known_summary_tokens(self) -> tuple[tuple[int, int], ...]:
        """The (shard, token) pairs advertising which foreign summaries we
        already hold — lets the responder answer with position diffs
        instead of full compressed blooms (satellite to ROADMAP item 1).
        The home shard is excluded: its summary is always served full."""
        assert self.pview is not None
        return tuple(
            (shard, summary.token)
            for shard, summary in sorted(self.pview.summaries.items())
            if shard != self.pview.home and summary.version > 0
        )

    async def _refresh_summaries(self) -> None:
        target = self._pick_target()
        if target is None:
            return
        reply = await self._request_peer(
            target, ShardSummaryRequest((), False, self._known_summary_tokens())
        )
        if isinstance(reply, ShardSummaryReply):
            self._install_summary_reply(reply)

    async def _pull_summaries(self, address: str) -> None:
        """One summary refresh aimed at a raw address (join warm-up).

        Best-effort: the bootstrap may predate partial-view mode and
        answer with an error, in which case the rotating refresh fills
        the summaries in over the next few rounds.
        """
        msg = ShardSummaryRequest((), False, self._known_summary_tokens())
        frame = codec.encode(msg)
        self._account_gossip(msg, frame)
        try:
            reply = codec.decode(await self.transport.request(address, frame))
        except (TransportError, CodecError):
            return
        if isinstance(reply, ShardSummaryReply):
            self._install_summary_reply(reply)

    async def _exchange_views(self) -> None:
        assert self.pview is not None
        target = self._pick_target()
        if target is None:
            return
        want = self.pview.config.exchange_records
        reply = await self._request_peer(
            target, ViewExchange(self._sample_records(want), want)
        )
        if isinstance(reply, ViewExchange):
            for record in reply.records:
                if record.peer_id != self.peer_id:
                    self._install_member(record, None, online=record.online)

    async def _backfill_home(self) -> None:
        """Re-learn home-shard filters we lack (a killed shard member's
        filters are recoverable from any peer still holding them)."""
        assert self.pview is not None
        home = self.pview.home
        missing = any(
            entry.bloom_filter is None and self.pview.shard_of(pid) == home
            for pid, entry in self.peer.directory.items()
            if pid != self.peer_id
        )
        if not missing:
            return
        target = self._pick_target()
        if target is None:
            return
        self._count(
            "partialview_backfills_total", 1, "home-shard filter backfill requests"
        )
        reply = await self._request_peer(target, ShardSummaryRequest((home,), True))
        if isinstance(reply, ShardSummaryReply):
            self._install_summary_reply(reply)

    def _install_summary_reply(self, reply: ShardSummaryReply) -> None:
        assert self.pview is not None
        for entry in reply.entries:
            if entry.shard == self.pview.home:
                continue  # home knowledge is first-class, never coarse
            if entry.diff:
                # A position diff against the summary we advertised; OR'd
                # in monotonically, so applying it is always sound even if
                # our summary moved since the request went out.
                try:
                    diff = BloomDiff.from_bytes(entry.bloom)
                except (ValueError, EOFError, struct.error):
                    continue  # damaged diff: re-learned at the next refresh
                if diff.num_bits != self.bloom_config.num_bits:
                    continue
                self.pview.summary_for(entry.shard).install_diff(
                    diff, entry.member_count, entry.version
                )
                continue
            try:
                bf = BloomFilter.from_compressed(
                    entry.bloom, num_hashes=self.bloom_config.num_hashes
                )
            except ValueError:
                continue  # damaged summary: re-learned at the next refresh
            self.pview.summary_for(entry.shard).install(
                bf, entry.member_count, entry.version
            )
        for member in reply.members:
            if member.record.peer_id == self.peer_id:
                continue
            bf = None
            if member.bloom:
                try:
                    bf = BloomFilter.from_compressed(
                        member.bloom, num_hashes=self.bloom_config.num_hashes
                    )
                except ValueError:
                    bf = None
            self._install_member(member.record, bf, online=member.record.online)

    def _sample_records(self, limit: int) -> tuple[PeerRecord, ...]:
        """Our own record plus a bounded random sample of directory rows."""
        records = [self._own_record()]
        pids = [pid for pid in self.peer.directory if pid != self.peer_id]
        take = max(0, limit - 1)
        if len(pids) > take:
            idx = self.rng.permutation(len(pids))[:take]
            pids = [pids[int(i)] for i in idx]
        for pid in pids:
            entry = self.peer.directory[pid]
            records.append(
                PeerRecord(pid, entry.address, entry.online, max(0, entry.filter_version))
            )
        return tuple(records)

    def _on_shard_summaries(self, msg: ShardSummaryRequest) -> object:
        if self.pview is None:
            return ErrorReply("partial-view mode is off")
        pview = self.pview
        wanted = set(msg.shards) if msg.shards else None
        entries: list[ShardSummaryEntry] = []
        if wanted is None or pview.home in wanted:
            entries.append(self._home_summary_entry())
        census: dict[int, int] = {}
        for pid in self.peer.directory:
            shard = pview.shard_of(pid)
            census[shard] = census.get(shard, 0) + 1
        known = dict(msg.known)
        for shard, summary in sorted(pview.summaries.items()):
            if shard == pview.home:
                continue
            if wanted is not None and shard not in wanted:
                continue
            if summary.version == 0:
                continue  # nothing folded yet: an empty filter teaches nothing
            count = max(summary.member_count, census.get(shard, 0))
            if shard in known:
                positions = summary.diff_since(known[shard])
                if positions is not None:
                    self._count(
                        "partialview_summary_diffs_total",
                        1,
                        "shard summaries answered as position diffs",
                    )
                    entries.append(
                        ShardSummaryEntry(
                            shard,
                            count,
                            summary.version,
                            BloomDiff(
                                self.bloom_config.num_bits, positions
                            ).to_bytes(),
                            diff=True,
                        )
                    )
                    continue
            self._count(
                "partialview_summary_fulls_total",
                1,
                "shard summaries answered as full compressed blooms",
            )
            entries.append(
                ShardSummaryEntry(
                    shard,
                    count,
                    summary.version,
                    summary.bloom.to_compressed(),
                )
            )
        members: tuple[SnapshotEntry, ...] = ()
        if msg.want_members:
            members = self._member_entries(wanted if wanted is not None else {pview.home})
        return ShardSummaryReply(tuple(entries), members)

    def _home_summary_entry(self) -> ShardSummaryEntry:
        """The home-shard summary, computed fresh from first-class filters.

        The version is a deterministic fold of the members' filter
        versions, so any home member serves a comparable freshness signal
        without coordination (it grows with every member publish)."""
        pview = self.pview
        assert pview is not None
        bloom = BloomFilter(self.bloom_config.num_bits, self.bloom_config.num_hashes)
        bloom.union_inplace(self.peer.store.bloom_filter)
        count = 1
        version = max(0, self.peer.store.filter_version) + 1
        for pid, entry in self.peer.directory.items():
            if pid == self.peer_id or pview.shard_of(pid) != pview.home:
                continue
            count += 1
            version += max(0, entry.filter_version) + 1
            if entry.bloom_filter is not None:
                bloom.union_inplace(entry.bloom_filter)
        return ShardSummaryEntry(pview.home, count, version, bloom.to_compressed())

    def _member_entries(self, shards: set[int]) -> tuple[SnapshotEntry, ...]:
        """Full (record, compressed filter) entries we hold for ``shards``."""
        pview = self.pview
        assert pview is not None
        members: list[SnapshotEntry] = []
        if pview.home in shards:
            members.append(
                SnapshotEntry(
                    self._own_record(), self.peer.store.bloom_filter.to_compressed()
                )
            )
        for pid, entry in sorted(self.peer.directory.items()):
            if pid == self.peer_id or entry.bloom_filter is None:
                continue
            if pview.shard_of(pid) not in shards:
                continue
            record = PeerRecord(
                pid, entry.address, entry.online, max(0, entry.filter_version)
            )
            members.append(SnapshotEntry(record, entry.bloom_filter.to_compressed()))
        return tuple(members)

    def _on_view_exchange(self, msg: ViewExchange) -> ViewExchange:
        for record in msg.records:
            if record.peer_id != self.peer_id:
                self._install_member(record, None, online=record.online)
        want = min(msg.want, 64)
        if want <= 0:
            return ViewExchange((), 0)
        return ViewExchange(self._sample_records(want), 0)

    def _on_shard_match(self, msg: ShardMatchQuery) -> object:
        if self.pview is None:
            return ErrorReply("partial-view mode is off")
        self._pview_sync()
        terms = list(msg.terms)
        pids, hits = self.pview.matrix.hit_matrix(terms, shards=(msg.shard,))
        out: list[tuple[int, int]] = []
        for i, pid in enumerate(pids):
            mask = 0
            for t in range(len(terms)):
                if hits[i, t]:
                    mask |= 1 << t
            if mask:
                out.append((pid, mask))
        return ShardMatchResponse(msg.shard, tuple(out))

    # ------------------------------------------------------------------
    # server side
    # ------------------------------------------------------------------

    async def _serve(self, body: bytes) -> bytes:
        try:
            msg = codec.decode(body)
        except CodecError as exc:
            return codec.encode(ErrorReply(f"bad frame: {exc}"))
        try:
            reply = await self._dispatch(msg)
        except Exception as exc:  # noqa: BLE001 - never kill the server loop
            reply = ErrorReply(f"{type(exc).__name__}: {exc}")
        frame = codec.encode(reply)
        self._account_gossip(reply, frame)
        return frame

    async def _dispatch(self, msg: object) -> object:
        if isinstance(msg, RumorPush):
            return self._on_rumor_push(msg)
        if isinstance(msg, RumorData):
            for rumor in msg.rumors:
                self._learn_rumor(rumor, make_hot=True)
            return AENothing()
        if isinstance(msg, AERequest):
            if msg.digest == self.digest:
                return AENothing()
            return AERecent(tuple(self.recent_learned), len(self.known))
        if isinstance(msg, PullRequest):
            return self._on_pull(msg)
        if isinstance(msg, JoinRequest):
            return self._on_join(msg)
        if isinstance(msg, RankedQuery):
            docs = score_local_documents(
                self.peer.store.index, list(msg.terms), dict(msg.ipf), msg.k
            )
            return RankedResponse(tuple((d.doc_id, d.score) for d in docs))
        if isinstance(msg, ExhaustiveQuery):
            return ExhaustiveResponse(
                tuple(exhaustive_local_match(self.peer.store.index, list(msg.terms)))
            )
        if isinstance(msg, SnippetFetch):
            try:
                doc = self.peer.store.get(msg.doc_id)
            except KeyError:
                return SnippetResponse(False, msg.doc_id, "")
            self.analytics.record_access(doc.doc_id)
            return SnippetResponse(True, doc.doc_id, doc.text)
        if isinstance(msg, StatsRequest):
            return self.stats_response()
        if isinstance(msg, PublishRequest):
            # The fleet control plane: a remotely injected document takes
            # the exact local-publish path (WAL when durable, index,
            # filter flush + BF_UPDATE rumor) and is acked only after it.
            if msg.doc_id in self.peer.store:
                return PublishAck(False, msg.doc_id, self.peer.store.filter_version)
            self.publish(Document(msg.doc_id, msg.text))
            self._count(
                "remote_publishes_total", 1, "documents injected via PublishRequest"
            )
            return PublishAck(True, msg.doc_id, self.peer.store.filter_version)
        if isinstance(msg, SubscribeRequest):
            return await self.subscriptions.handle_subscribe(msg)
        if isinstance(msg, Unsubscribe):
            return self.subscriptions.handle_unsubscribe(msg)
        if isinstance(msg, ShardSummaryRequest):
            return self._on_shard_summaries(msg)
        if isinstance(msg, ViewExchange):
            return self._on_view_exchange(msg)
        if isinstance(msg, ShardMatchQuery):
            return self._on_shard_match(msg)
        if isinstance(msg, ManifestRequest):
            reply = self.content.on_manifest_request(msg)
            if getattr(reply, "found", False):
                # A manifest fetch is the start of a content retrieval —
                # count it as one community read of the document.
                self.analytics.record_access(msg.doc_id)
            return reply
        if isinstance(msg, ChunkRequest):
            return self.content.on_chunk_request(msg)
        if isinstance(msg, ManifestPush):
            return self.content.on_manifest_push(msg)
        if isinstance(msg, ChunkPush):
            return self.content.on_chunk_push(msg)
        if isinstance(msg, SketchExchange):
            if not self.analytics.enabled:
                return ErrorReply("analytics plane is off")
            return self.analytics.on_exchange(msg)
        if isinstance(msg, TopTermsRequest):
            if not self.analytics.enabled:
                return ErrorReply("analytics plane is off")
            return self.analytics.on_top_terms(msg)
        if isinstance(msg, BrowseRequest):
            if not self.analytics.enabled:
                return ErrorReply("analytics plane is off")
            from repro.analytics.browse import local_listing

            return local_listing(self, msg)
        return ErrorReply(f"unexpected message {type(msg).__name__}")

    def _on_rumor_push(self, msg: RumorPush) -> RumorReply:
        needed = tuple(rid for rid in msg.rids if rid not in self.known)
        piggy: tuple[int, ...] = ()
        if self.config.use_partial_ae:
            pushed = set(msg.rids)
            piggy = tuple(rid for rid in self.recent if rid not in pushed)
        # Receiving a rumor message re-accelerates gossip (Section 3).
        self.intervals.reset()
        return RumorReply(needed, piggy)

    def _on_pull(self, msg: PullRequest) -> object:
        if not msg.rids:  # empty pull = full directory summary request
            # Placeholder entries (seen via a rumor id only) carry the
            # filter_version=-1 sentinel, which does not fit the u32 wire
            # field; clamp to 0 — receivers merge with max(), so this
            # never regresses a version they already know.
            records = tuple(
                PeerRecord(pid, e.address, e.online, max(0, e.filter_version))
                for pid, e in sorted(self.peer.directory.items())
            )
            return AESummary(records, tuple(sorted(self.known)))
        have = tuple(
            self.rumors[rid] for rid in msg.rids if rid in self.rumors
        )
        return RumorData(have)

    def _on_join(self, msg: JoinRequest) -> JoinSnapshot:
        rumor = WireRumor(
            msg.rid,
            RumorKind.JOIN,
            msg.record.peer_id,
            msg.created_at,
            codec.encode_member_payload(msg.record, msg.bloom),
        )
        self._learn_rumor(rumor, make_hot=True)
        entries = []
        for pid, entry in sorted(self.peer.directory.items()):
            if pid == self.peer_id:
                record = self._own_record()
                bloom = self.peer.store.bloom_filter.to_compressed()
            else:
                record = PeerRecord(
                    pid, entry.address, entry.online, max(0, entry.filter_version)
                )
                bloom = (
                    entry.bloom_filter.to_compressed()
                    if entry.bloom_filter is not None
                    else b""
                )
            entries.append(SnapshotEntry(record, bloom))
        return JoinSnapshot(tuple(entries), tuple(sorted(self.known)))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def members(self) -> list[int]:
        """Sorted ids of every known member (including ourselves)."""
        return sorted(self.peer.directory)

    def replica_of(self, peer_id: int) -> BloomFilter | None:
        """Our replicated copy of ``peer_id``'s Bloom filter."""
        if peer_id == self.peer_id:
            return self.peer.store.bloom_filter
        entry = self.peer.directory.get(peer_id)
        return entry.bloom_filter if entry is not None else None

    def __repr__(self) -> str:
        return (
            f"NetworkPeer(id={self.peer_id}, addr={self.address}, "
            f"docs={len(self.peer.store)}, members={len(self.peer.directory)}, "
            f"known={len(self.known)})"
        )
