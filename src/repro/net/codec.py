"""Versioned binary wire format for PlanetP messages.

Every frame body is ``version byte + type byte + struct-packed fields``
(big-endian throughout, no external serializer).  The transport layer adds
a 4-byte length prefix; this module deals only in frame bodies.

Two message families share the format:

* the **gossip inventory** of :mod:`repro.gossip.wire` — the same objects
  the simulator prices with :class:`~repro.gossip.messages.MessageSizer`,
  so the cost model and the real encoding can be cross-checked; and
* the **search RPCs** defined here — exhaustive (conjunctive) query,
  ranked TF×IPF query carrying the caller's IPF weights, and snippet
  fetch — plus a generic error reply.

Field conventions: rumor ids travel as 6-byte big-endian integers
(Table 2's id-digest size), short strings as ``u16`` length + UTF-8,
document text and byte blobs as ``u32`` length + raw bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.constants import NET_CODEC_VERSION
from repro.gossip.rumor import RumorKind
from repro.gossip.wire import (
    AENothing,
    AERecent,
    AERequest,
    AESummary,
    BrowseRequest,
    BrowseResponse,
    ChunkPush,
    ChunkReply,
    ChunkRequest,
    ContentManifest,
    JoinRequest,
    JoinSnapshot,
    ManifestAck,
    ManifestPush,
    ManifestReply,
    ManifestRequest,
    Notify,
    PeerRecord,
    PullRequest,
    RumorData,
    RumorPush,
    RumorReply,
    ShardMatchQuery,
    ShardMatchResponse,
    ShardSummaryEntry,
    ShardSummaryReply,
    ShardSummaryRequest,
    SketchEntry,
    SketchExchange,
    SketchReply,
    SnapshotEntry,
    SubscribeAck,
    SubscribeRequest,
    TopTermsRequest,
    TopTermsReply,
    Unsubscribe,
    ViewExchange,
    WireRumor,
)

__all__ = [
    "CodecError",
    "SHARD_MATCH_MAX_TERMS",
    "RankedQuery",
    "RankedResponse",
    "ExhaustiveQuery",
    "ExhaustiveResponse",
    "SnippetFetch",
    "SnippetResponse",
    "StatsRequest",
    "StatsResponse",
    "PublishRequest",
    "PublishAck",
    "ErrorReply",
    "encode",
    "decode",
    "encode_member_payload",
    "decode_member_payload",
    "encode_update_payload",
    "decode_update_payload",
]


class CodecError(ValueError):
    """A frame could not be encoded or decoded."""


# ---------------------------------------------------------------------------
# search RPCs (the non-gossip half of the inventory)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RankedQuery:
    """Ask a peer for its local top-``k`` under eq. 2.

    Carries the querier's IPF weights (computed from its replicated
    directory) so the contacted peer scores with the *querier's* view —
    exactly the Section 5.2 contract.
    """

    terms: tuple[str, ...]
    ipf: tuple[tuple[str, float], ...]
    k: int


@dataclass(frozen=True)
class RankedResponse:
    """A peer's local top-k: ``(doc_id, score)`` pairs, best first."""

    results: tuple[tuple[str, float], ...]


@dataclass(frozen=True)
class ExhaustiveQuery:
    """Section 5.1 conjunctive search: all local docs containing every term."""

    terms: tuple[str, ...]


@dataclass(frozen=True)
class ExhaustiveResponse:
    """Sorted ids of the contacted peer's matching documents."""

    doc_ids: tuple[str, ...]


@dataclass(frozen=True)
class SnippetFetch:
    """Retrieve one document's content from its owner."""

    doc_id: str


@dataclass(frozen=True)
class SnippetResponse:
    """The fetched document (``found`` is False if the owner lacks it)."""

    found: bool
    doc_id: str
    text: str


@dataclass(frozen=True)
class StatsRequest:
    """Poll a peer's runtime metrics (the :mod:`repro.obs` registry)."""


@dataclass(frozen=True)
class StatsResponse:
    """A peer's flattened metric samples.

    ``samples`` is the registry's :meth:`~repro.obs.Registry.samples`
    output — Prometheus-style ``(name, value)`` pairs, with histograms
    flattened into their cumulative ``_bucket{le=...}``/``_sum``/
    ``_count`` series — plus the responder's id and uptime so a remote
    poller can rate-normalise counters.
    """

    peer_id: int
    uptime_s: float
    samples: tuple[tuple[str, float], ...]


@dataclass(frozen=True)
class PublishRequest:
    """Inject one document into a live node (the fleet control plane).

    The node publishes ``Document(doc_id, text)`` exactly as a local
    publish would: WAL'd when durable, indexed, filter growth flushed as
    a BF_UPDATE rumor.  Orchestrators use it to drive scripted publish
    waves at exact scenario moments instead of guessing with timers.
    """

    doc_id: str
    text: str


@dataclass(frozen=True)
class PublishAck:
    """Outcome of a :class:`PublishRequest` at the publishing node."""

    accepted: bool
    doc_id: str
    filter_version: int


@dataclass(frozen=True)
class ErrorReply:
    """Remote-side failure report (malformed frame, unknown document...)."""

    message: str


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")

_RID_BYTES = 6  # Table 2's 6-byte rumor-id digest
_RID_MAX = 1 << (8 * _RID_BYTES)

#: Minimum encoded sizes, used to reject forged item counts up front.
_RECORD_MIN_BYTES = 4 + 1 + 4 + 2  # peer_id + online + version + empty address
_RUMOR_MIN_BYTES = _RID_BYTES + 1 + 4 + 8 + 4  # rid + kind + origin + time + blob

_KIND_CODE = {RumorKind.JOIN: 1, RumorKind.REJOIN: 2, RumorKind.BF_UPDATE: 3}
_CODE_KIND = {v: k for k, v in _KIND_CODE.items()}

#: A shard-match response packs per-term hits into a u64 bitmask, so a
#: shard-match query carries at most this many terms.
SHARD_MATCH_MAX_TERMS = 64

#: Minimum encoded shard-summary entry: shard + member_count + version +
#: empty bloom blob + diff flag.
_SUMMARY_ENTRY_MIN_BYTES = 4 + 4 + 8 + 4 + 1

#: One advertised (shard, summary token) pair in a summary request.
_KNOWN_TOKEN_BYTES = 4 + 8

#: A manifest's chunk-CRC list and an ack's missing-index list are both
#: u32s; holder addresses are at least a u16 length prefix.
_CRC_BYTES = 4
_HOLDER_MIN_BYTES = 2

#: Minimum encoded sketch entry: origin + epoch + two empty u16 lists.
_SKETCH_ENTRY_MIN_BYTES = 4 + 8 + 2 + 2

#: One (origin, epoch) pair of a sketch digest.
_SKETCH_VERSION_BYTES = 4 + 8

#: One top-terms entry: empty term string + u64 count.
_TOP_TERM_MIN_BYTES = 2 + 8

#: One browse listing entry: empty doc id + empty link + u64 popularity.
_BROWSE_ENTRY_MIN_BYTES = 2 + 2 + 8


class _Writer:
    """Accumulates big-endian fields into a frame body."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, v: int) -> None:
        self.buf += _U8.pack(v)

    def u16(self, v: int) -> None:
        self.buf += _U16.pack(v)

    def u32(self, v: int) -> None:
        self.buf += _U32.pack(v)

    def u64(self, v: int) -> None:
        self.buf += _U64.pack(v)

    def f64(self, v: float) -> None:
        self.buf += _F64.pack(v)

    def rid(self, v: int) -> None:
        if not 0 <= v < _RID_MAX:
            raise CodecError(f"rumor id {v} does not fit in {_RID_BYTES} bytes")
        self.buf += v.to_bytes(_RID_BYTES, "big")

    def rids(self, rids: tuple[int, ...]) -> None:
        self.u32(len(rids))
        for r in rids:
            self.rid(r)

    def text(self, s: str) -> None:
        raw = s.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise CodecError("string field exceeds 64 KiB")
        self.u16(len(raw))
        self.buf += raw

    def blob(self, b: bytes) -> None:
        self.u32(len(b))
        self.buf += b


class _Reader:
    """Reads big-endian fields from a frame body, checking bounds."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise CodecError("truncated frame")
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def rid(self) -> int:
        return int.from_bytes(self._take(_RID_BYTES), "big")

    def count(self, min_item_bytes: int) -> int:
        """A u32 item count, rejected up front if even minimum-sized items
        could not fit in the remaining bytes — so a forged count can never
        drive a long decode loop or a large allocation."""
        n = self.u32()
        if n * min_item_bytes > len(self.data) - self.pos:
            raise CodecError(f"count {n} exceeds remaining frame bytes")
        return n

    def rids(self) -> tuple[int, ...]:
        return tuple(self.rid() for _ in range(self.count(_RID_BYTES)))

    def text(self) -> str:
        try:
            return self._take(self.u16()).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in string field: {exc}") from exc

    def blob(self) -> bytes:
        return self._take(self.u32())

    def done(self) -> None:
        if self.pos != len(self.data):
            raise CodecError("trailing bytes after message body")


def _w_record(w: _Writer, rec: PeerRecord) -> None:
    w.u32(rec.peer_id)
    w.u8(1 if rec.online else 0)
    w.u32(rec.filter_version)
    w.text(rec.address)


def _r_record(r: _Reader) -> PeerRecord:
    peer_id = r.u32()
    online = bool(r.u8())
    version = r.u32()
    address = r.text()
    return PeerRecord(peer_id, address, online, version)


def _w_rumor(w: _Writer, rumor: WireRumor) -> None:
    w.rid(rumor.rid)
    w.u8(_KIND_CODE[rumor.kind])
    w.u32(rumor.origin)
    w.f64(rumor.created_at)
    w.blob(rumor.payload)


def _r_rumor(r: _Reader) -> WireRumor:
    rid = r.rid()
    code = r.u8()
    if code not in _CODE_KIND:
        raise CodecError(f"unknown rumor kind code {code}")
    origin = r.u32()
    created_at = r.f64()
    payload = r.blob()
    return WireRumor(rid, _CODE_KIND[code], origin, created_at, payload)


def _w_manifest(w: _Writer, m: ContentManifest) -> None:
    w.text(m.doc_id)
    w.u32(m.origin)
    w.u64(m.total_size)
    w.u32(m.chunk_size)
    w.blob(m.digest)
    w.u32(len(m.chunk_crcs))
    for crc in m.chunk_crcs:
        w.u32(crc)


def _r_manifest(r: _Reader) -> ContentManifest:
    doc_id = r.text()
    origin = r.u32()
    total_size = r.u64()
    chunk_size = r.u32()
    digest = r.blob()
    crcs = tuple(r.u32() for _ in range(r.count(_CRC_BYTES)))
    return ContentManifest(doc_id, origin, total_size, chunk_size, digest, crcs)


def _w_sketch_entry(w: _Writer, entry: SketchEntry) -> None:
    w.u32(entry.origin)
    w.u64(entry.epoch)
    w.u16(len(entry.terms))
    for term, count in entry.terms:
        w.text(term)
        w.u64(count)
    w.u16(len(entry.docs))
    for doc_id, count in entry.docs:
        w.text(doc_id)
        w.u64(count)


def _r_sketch_entry(r: _Reader) -> SketchEntry:
    origin = r.u32()
    epoch = r.u64()
    terms = tuple((r.text(), r.u64()) for _ in range(r.u16()))
    docs = tuple((r.text(), r.u64()) for _ in range(r.u16()))
    return SketchEntry(origin, epoch, terms, docs)


def _w_sketch_versions(w: _Writer, versions: tuple[tuple[int, int], ...]) -> None:
    w.u32(len(versions))
    for origin, epoch in versions:
        w.u32(origin)
        w.u64(epoch)


def _r_sketch_versions(r: _Reader) -> tuple[tuple[int, int], ...]:
    return tuple(
        (r.u32(), r.u64()) for _ in range(r.count(_SKETCH_VERSION_BYTES))
    )


# ---------------------------------------------------------------------------
# per-type encoders/decoders
# ---------------------------------------------------------------------------

_T_RUMOR_PUSH = 1
_T_RUMOR_REPLY = 2
_T_RUMOR_DATA = 3
_T_AE_REQUEST = 4
_T_AE_NOTHING = 5
_T_AE_RECENT = 6
_T_AE_SUMMARY = 7
_T_PULL_REQUEST = 8
_T_JOIN_REQUEST = 9
_T_JOIN_SNAPSHOT = 10
_T_RANKED_QUERY = 16
_T_RANKED_RESPONSE = 17
_T_EXHAUSTIVE_QUERY = 18
_T_EXHAUSTIVE_RESPONSE = 19
_T_SNIPPET_FETCH = 20
_T_SNIPPET_RESPONSE = 21
_T_STATS_REQUEST = 22
_T_STATS_RESPONSE = 23
_T_SUBSCRIBE_REQUEST = 24
_T_SUBSCRIBE_ACK = 25
_T_NOTIFY = 26
_T_UNSUBSCRIBE = 27
_T_PUBLISH_REQUEST = 28
_T_PUBLISH_ACK = 29
_T_ERROR = 31
_T_SHARD_SUMMARY_REQUEST = 32
_T_SHARD_SUMMARY_REPLY = 33
_T_VIEW_EXCHANGE = 34
_T_SHARD_MATCH_QUERY = 35
_T_SHARD_MATCH_RESPONSE = 36
_T_MANIFEST_REQUEST = 37
_T_MANIFEST_REPLY = 38
_T_CHUNK_REQUEST = 39
_T_CHUNK_REPLY = 40
_T_MANIFEST_PUSH = 41
_T_MANIFEST_ACK = 42
_T_CHUNK_PUSH = 43
_T_SKETCH_EXCHANGE = 44
_T_SKETCH_REPLY = 45
_T_TOP_TERMS_REQUEST = 46
_T_TOP_TERMS_REPLY = 47
_T_BROWSE_REQUEST = 48
_T_BROWSE_RESPONSE = 49

_TYPE_OF = {
    RumorPush: _T_RUMOR_PUSH,
    RumorReply: _T_RUMOR_REPLY,
    RumorData: _T_RUMOR_DATA,
    AERequest: _T_AE_REQUEST,
    AENothing: _T_AE_NOTHING,
    AERecent: _T_AE_RECENT,
    AESummary: _T_AE_SUMMARY,
    PullRequest: _T_PULL_REQUEST,
    JoinRequest: _T_JOIN_REQUEST,
    JoinSnapshot: _T_JOIN_SNAPSHOT,
    RankedQuery: _T_RANKED_QUERY,
    RankedResponse: _T_RANKED_RESPONSE,
    ExhaustiveQuery: _T_EXHAUSTIVE_QUERY,
    ExhaustiveResponse: _T_EXHAUSTIVE_RESPONSE,
    SnippetFetch: _T_SNIPPET_FETCH,
    SnippetResponse: _T_SNIPPET_RESPONSE,
    StatsRequest: _T_STATS_REQUEST,
    StatsResponse: _T_STATS_RESPONSE,
    SubscribeRequest: _T_SUBSCRIBE_REQUEST,
    SubscribeAck: _T_SUBSCRIBE_ACK,
    Notify: _T_NOTIFY,
    Unsubscribe: _T_UNSUBSCRIBE,
    PublishRequest: _T_PUBLISH_REQUEST,
    PublishAck: _T_PUBLISH_ACK,
    ErrorReply: _T_ERROR,
    ShardSummaryRequest: _T_SHARD_SUMMARY_REQUEST,
    ShardSummaryReply: _T_SHARD_SUMMARY_REPLY,
    ViewExchange: _T_VIEW_EXCHANGE,
    ShardMatchQuery: _T_SHARD_MATCH_QUERY,
    ShardMatchResponse: _T_SHARD_MATCH_RESPONSE,
    ManifestRequest: _T_MANIFEST_REQUEST,
    ManifestReply: _T_MANIFEST_REPLY,
    ChunkRequest: _T_CHUNK_REQUEST,
    ChunkReply: _T_CHUNK_REPLY,
    ManifestPush: _T_MANIFEST_PUSH,
    ManifestAck: _T_MANIFEST_ACK,
    ChunkPush: _T_CHUNK_PUSH,
    SketchExchange: _T_SKETCH_EXCHANGE,
    SketchReply: _T_SKETCH_REPLY,
    TopTermsRequest: _T_TOP_TERMS_REQUEST,
    TopTermsReply: _T_TOP_TERMS_REPLY,
    BrowseRequest: _T_BROWSE_REQUEST,
    BrowseResponse: _T_BROWSE_RESPONSE,
}


def encode(msg: object, version: int = NET_CODEC_VERSION) -> bytes:
    """Encode any inventory message into a frame body."""
    mtype = _TYPE_OF.get(type(msg))
    if mtype is None:
        raise CodecError(f"not a wire message: {type(msg).__name__}")
    w = _Writer()
    w.u8(version)
    w.u8(mtype)
    if isinstance(msg, RumorPush):
        w.rids(msg.rids)
    elif isinstance(msg, RumorReply):
        w.rids(msg.needed)
        w.rids(msg.piggyback)
    elif isinstance(msg, RumorData):
        w.u32(len(msg.rumors))
        for rumor in msg.rumors:
            _w_rumor(w, rumor)
    elif isinstance(msg, AERequest):
        w.u64(msg.digest)
    elif isinstance(msg, AENothing):
        pass
    elif isinstance(msg, AERecent):
        w.rids(msg.rids)
        w.u32(msg.known_count)
    elif isinstance(msg, AESummary):
        w.u32(len(msg.entries))
        for rec in msg.entries:
            _w_record(w, rec)
        w.rids(msg.rids)
    elif isinstance(msg, PullRequest):
        w.rids(msg.rids)
    elif isinstance(msg, JoinRequest):
        _w_record(w, msg.record)
        w.blob(msg.bloom)
        w.rid(msg.rid)
        w.f64(msg.created_at)
    elif isinstance(msg, JoinSnapshot):
        w.u32(len(msg.entries))
        for entry in msg.entries:
            _w_record(w, entry.record)
            w.blob(entry.bloom)
        w.rids(msg.rids)
    elif isinstance(msg, RankedQuery):
        w.u16(len(msg.terms))
        for t in msg.terms:
            w.text(t)
        w.u16(len(msg.ipf))
        for term, weight in msg.ipf:
            w.text(term)
            w.f64(weight)
        w.u16(msg.k)
    elif isinstance(msg, RankedResponse):
        w.u32(len(msg.results))
        for doc_id, score in msg.results:
            w.text(doc_id)
            w.f64(score)
    elif isinstance(msg, ExhaustiveQuery):
        w.u16(len(msg.terms))
        for t in msg.terms:
            w.text(t)
    elif isinstance(msg, ExhaustiveResponse):
        w.u32(len(msg.doc_ids))
        for doc_id in msg.doc_ids:
            w.text(doc_id)
    elif isinstance(msg, SnippetFetch):
        w.text(msg.doc_id)
    elif isinstance(msg, SnippetResponse):
        w.u8(1 if msg.found else 0)
        w.text(msg.doc_id)
        w.blob(msg.text.encode("utf-8"))
    elif isinstance(msg, StatsRequest):
        pass
    elif isinstance(msg, StatsResponse):
        w.u32(msg.peer_id)
        w.f64(msg.uptime_s)
        w.u32(len(msg.samples))
        for name, value in msg.samples:
            w.text(name)
            w.f64(value)
    elif isinstance(msg, SubscribeRequest):
        w.u64(msg.sub_id)
        w.u16(len(msg.terms))
        for t in msg.terms:
            w.text(t)
        w.text(msg.notify_address)
        w.f64(msg.created_at)
    elif isinstance(msg, SubscribeAck):
        w.u64(msg.sub_id)
        w.u8(1 if msg.accepted else 0)
        w.text(msg.message)
    elif isinstance(msg, Notify):
        w.u64(msg.sub_id)
        w.u32(msg.origin)
        w.text(msg.doc_id)
        w.blob(msg.text.encode("utf-8"))
    elif isinstance(msg, Unsubscribe):
        w.u64(msg.sub_id)
    elif isinstance(msg, PublishRequest):
        w.text(msg.doc_id)
        w.blob(msg.text.encode("utf-8"))
    elif isinstance(msg, PublishAck):
        w.u8(1 if msg.accepted else 0)
        w.text(msg.doc_id)
        w.u32(msg.filter_version)
    elif isinstance(msg, ErrorReply):
        w.text(msg.message)
    elif isinstance(msg, ShardSummaryRequest):
        w.u32(len(msg.shards))
        for shard in msg.shards:
            w.u32(shard)
        w.u8(1 if msg.want_members else 0)
        w.u32(len(msg.known))
        for shard, token in msg.known:
            w.u32(shard)
            w.u64(token)
    elif isinstance(msg, ShardSummaryReply):
        w.u32(len(msg.entries))
        for entry in msg.entries:
            w.u32(entry.shard)
            w.u32(entry.member_count)
            w.u64(entry.version)
            w.blob(entry.bloom)
            w.u8(1 if entry.diff else 0)
        w.u32(len(msg.members))
        for member in msg.members:
            _w_record(w, member.record)
            w.blob(member.bloom)
    elif isinstance(msg, ViewExchange):
        w.u32(len(msg.records))
        for rec in msg.records:
            _w_record(w, rec)
        w.u16(msg.want)
    elif isinstance(msg, ShardMatchQuery):
        if len(msg.terms) > SHARD_MATCH_MAX_TERMS:
            raise CodecError(
                f"shard-match query exceeds {SHARD_MATCH_MAX_TERMS} terms"
            )
        w.u32(msg.shard)
        w.u16(len(msg.terms))
        for t in msg.terms:
            w.text(t)
    elif isinstance(msg, ShardMatchResponse):
        w.u32(msg.shard)
        w.u32(len(msg.hits))
        for pid, mask in msg.hits:
            w.u32(pid)
            w.u64(mask)
    elif isinstance(msg, ManifestRequest):
        w.text(msg.doc_id)
    elif isinstance(msg, ManifestReply):
        w.u8(1 if msg.found else 0)
        if msg.found:
            if msg.manifest is None:
                raise CodecError("found ManifestReply carries no manifest")
            _w_manifest(w, msg.manifest)
        w.u32(len(msg.holders))
        for holder in msg.holders:
            w.text(holder)
    elif isinstance(msg, ChunkRequest):
        w.text(msg.doc_id)
        w.u32(msg.index)
        w.u32(msg.offset)
    elif isinstance(msg, ChunkReply):
        w.u8(1 if msg.found else 0)
        w.text(msg.doc_id)
        w.u32(msg.index)
        w.u32(msg.offset)
        w.u32(msg.total)
        w.blob(msg.data)
    elif isinstance(msg, ManifestPush):
        _w_manifest(w, msg.manifest)
    elif isinstance(msg, ManifestAck):
        w.text(msg.doc_id)
        w.u8(1 if msg.accepted else 0)
        w.u32(len(msg.missing))
        for index in msg.missing:
            w.u32(index)
    elif isinstance(msg, ChunkPush):
        w.text(msg.doc_id)
        w.u32(msg.index)
        w.blob(msg.data)
    elif isinstance(msg, SketchExchange):
        w.u32(len(msg.entries))
        for entry in msg.entries:
            _w_sketch_entry(w, entry)
        _w_sketch_versions(w, msg.versions)
    elif isinstance(msg, SketchReply):
        w.u32(len(msg.entries))
        for entry in msg.entries:
            _w_sketch_entry(w, entry)
        _w_sketch_versions(w, msg.versions)
    elif isinstance(msg, TopTermsRequest):
        w.u16(msg.k)
    elif isinstance(msg, TopTermsReply):
        w.u32(msg.origin_count)
        w.u32(len(msg.entries))
        for term, count in msg.entries:
            w.text(term)
            w.u64(count)
    elif isinstance(msg, BrowseRequest):
        w.text(msg.path)
        w.u16(msg.k)
    elif isinstance(msg, BrowseResponse):
        w.u8(1 if msg.found else 0)
        w.text(msg.path)
        w.u64(msg.generation)
        w.u32(len(msg.entries))
        for doc_id, link, score in msg.entries:
            w.text(doc_id)
            w.text(link)
            w.u64(score)
    return bytes(w.buf)


def decode(body: bytes) -> object:
    """Decode a frame body into its inventory message."""
    r = _Reader(body)
    version = r.u8()
    if version != NET_CODEC_VERSION:
        raise CodecError(f"unsupported wire version {version}")
    mtype = r.u8()
    if mtype == _T_RUMOR_PUSH:
        msg: object = RumorPush(r.rids())
    elif mtype == _T_RUMOR_REPLY:
        msg = RumorReply(r.rids(), r.rids())
    elif mtype == _T_RUMOR_DATA:
        msg = RumorData(tuple(_r_rumor(r) for _ in range(r.count(_RUMOR_MIN_BYTES))))
    elif mtype == _T_AE_REQUEST:
        msg = AERequest(r.u64())
    elif mtype == _T_AE_NOTHING:
        msg = AENothing()
    elif mtype == _T_AE_RECENT:
        msg = AERecent(r.rids(), r.u32())
    elif mtype == _T_AE_SUMMARY:
        entries = tuple(_r_record(r) for _ in range(r.count(_RECORD_MIN_BYTES)))
        msg = AESummary(entries, r.rids())
    elif mtype == _T_PULL_REQUEST:
        msg = PullRequest(r.rids())
    elif mtype == _T_JOIN_REQUEST:
        record = _r_record(r)
        bloom = r.blob()
        rid = r.rid()
        created_at = r.f64()
        msg = JoinRequest(record, bloom, rid, created_at)
    elif mtype == _T_JOIN_SNAPSHOT:
        snap = tuple(
            SnapshotEntry(_r_record(r), r.blob())
            for _ in range(r.count(_RECORD_MIN_BYTES + 4))
        )
        msg = JoinSnapshot(snap, r.rids())
    elif mtype == _T_RANKED_QUERY:
        terms = tuple(r.text() for _ in range(r.u16()))
        ipf = tuple((r.text(), r.f64()) for _ in range(r.u16()))
        msg = RankedQuery(terms, ipf, r.u16())
    elif mtype == _T_RANKED_RESPONSE:
        msg = RankedResponse(tuple((r.text(), r.f64()) for _ in range(r.count(10))))
    elif mtype == _T_EXHAUSTIVE_QUERY:
        msg = ExhaustiveQuery(tuple(r.text() for _ in range(r.u16())))
    elif mtype == _T_EXHAUSTIVE_RESPONSE:
        msg = ExhaustiveResponse(tuple(r.text() for _ in range(r.count(2))))
    elif mtype == _T_SNIPPET_FETCH:
        msg = SnippetFetch(r.text())
    elif mtype == _T_SNIPPET_RESPONSE:
        found = bool(r.u8())
        doc_id = r.text()
        try:
            text = r.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in document text: {exc}") from exc
        msg = SnippetResponse(found, doc_id, text)
    elif mtype == _T_STATS_REQUEST:
        msg = StatsRequest()
    elif mtype == _T_STATS_RESPONSE:
        peer_id = r.u32()
        uptime_s = r.f64()
        samples = tuple((r.text(), r.f64()) for _ in range(r.count(10)))
        msg = StatsResponse(peer_id, uptime_s, samples)
    elif mtype == _T_SUBSCRIBE_REQUEST:
        sub_id = r.u64()
        terms = tuple(r.text() for _ in range(r.u16()))
        notify_address = r.text()
        created_at = r.f64()
        msg = SubscribeRequest(sub_id, terms, notify_address, created_at)
    elif mtype == _T_SUBSCRIBE_ACK:
        msg = SubscribeAck(r.u64(), bool(r.u8()), r.text())
    elif mtype == _T_NOTIFY:
        sub_id = r.u64()
        origin = r.u32()
        doc_id = r.text()
        try:
            text = r.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in document text: {exc}") from exc
        msg = Notify(sub_id, origin, doc_id, text)
    elif mtype == _T_UNSUBSCRIBE:
        msg = Unsubscribe(r.u64())
    elif mtype == _T_PUBLISH_REQUEST:
        doc_id = r.text()
        try:
            text = r.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in document text: {exc}") from exc
        msg = PublishRequest(doc_id, text)
    elif mtype == _T_PUBLISH_ACK:
        msg = PublishAck(bool(r.u8()), r.text(), r.u32())
    elif mtype == _T_ERROR:
        msg = ErrorReply(r.text())
    elif mtype == _T_SHARD_SUMMARY_REQUEST:
        shards = tuple(r.u32() for _ in range(r.count(4)))
        want_members = bool(r.u8())
        known = tuple(
            (r.u32(), r.u64()) for _ in range(r.count(_KNOWN_TOKEN_BYTES))
        )
        msg = ShardSummaryRequest(shards, want_members, known)
    elif mtype == _T_SHARD_SUMMARY_REPLY:
        summaries = tuple(
            ShardSummaryEntry(r.u32(), r.u32(), r.u64(), r.blob(), bool(r.u8()))
            for _ in range(r.count(_SUMMARY_ENTRY_MIN_BYTES))
        )
        members = tuple(
            SnapshotEntry(_r_record(r), r.blob())
            for _ in range(r.count(_RECORD_MIN_BYTES + 4))
        )
        msg = ShardSummaryReply(summaries, members)
    elif mtype == _T_VIEW_EXCHANGE:
        records = tuple(_r_record(r) for _ in range(r.count(_RECORD_MIN_BYTES)))
        msg = ViewExchange(records, r.u16())
    elif mtype == _T_SHARD_MATCH_QUERY:
        shard = r.u32()
        num_terms = r.u16()
        if num_terms > SHARD_MATCH_MAX_TERMS:
            raise CodecError(
                f"shard-match term count {num_terms} exceeds "
                f"{SHARD_MATCH_MAX_TERMS}"
            )
        msg = ShardMatchQuery(shard, tuple(r.text() for _ in range(num_terms)))
    elif mtype == _T_SHARD_MATCH_RESPONSE:
        shard = r.u32()
        hits = tuple((r.u32(), r.u64()) for _ in range(r.count(12)))
        msg = ShardMatchResponse(shard, hits)
    elif mtype == _T_MANIFEST_REQUEST:
        msg = ManifestRequest(r.text())
    elif mtype == _T_MANIFEST_REPLY:
        found = bool(r.u8())
        manifest = _r_manifest(r) if found else None
        holders = tuple(r.text() for _ in range(r.count(_HOLDER_MIN_BYTES)))
        msg = ManifestReply(found, manifest, holders)
    elif mtype == _T_CHUNK_REQUEST:
        msg = ChunkRequest(r.text(), r.u32(), r.u32())
    elif mtype == _T_CHUNK_REPLY:
        found = bool(r.u8())
        doc_id = r.text()
        index = r.u32()
        offset = r.u32()
        total = r.u32()
        msg = ChunkReply(found, doc_id, index, offset, total, r.blob())
    elif mtype == _T_MANIFEST_PUSH:
        msg = ManifestPush(_r_manifest(r))
    elif mtype == _T_MANIFEST_ACK:
        doc_id = r.text()
        accepted = bool(r.u8())
        missing = tuple(r.u32() for _ in range(r.count(_CRC_BYTES)))
        msg = ManifestAck(doc_id, accepted, missing)
    elif mtype == _T_CHUNK_PUSH:
        msg = ChunkPush(r.text(), r.u32(), r.blob())
    elif mtype == _T_SKETCH_EXCHANGE:
        entries = tuple(
            _r_sketch_entry(r) for _ in range(r.count(_SKETCH_ENTRY_MIN_BYTES))
        )
        msg = SketchExchange(entries, _r_sketch_versions(r))
    elif mtype == _T_SKETCH_REPLY:
        entries = tuple(
            _r_sketch_entry(r) for _ in range(r.count(_SKETCH_ENTRY_MIN_BYTES))
        )
        msg = SketchReply(entries, _r_sketch_versions(r))
    elif mtype == _T_TOP_TERMS_REQUEST:
        msg = TopTermsRequest(r.u16())
    elif mtype == _T_TOP_TERMS_REPLY:
        origin_count = r.u32()
        terms = tuple(
            (r.text(), r.u64()) for _ in range(r.count(_TOP_TERM_MIN_BYTES))
        )
        msg = TopTermsReply(origin_count, terms)
    elif mtype == _T_BROWSE_REQUEST:
        msg = BrowseRequest(r.text(), r.u16())
    elif mtype == _T_BROWSE_RESPONSE:
        found = bool(r.u8())
        path = r.text()
        generation = r.u64()
        listing = tuple(
            (r.text(), r.text(), r.u64())
            for _ in range(r.count(_BROWSE_ENTRY_MIN_BYTES))
        )
        msg = BrowseResponse(found, path, generation, listing)
    else:
        raise CodecError(f"unknown message type byte {mtype}")
    r.done()
    return msg


# ---------------------------------------------------------------------------
# rumor payload encodings (what WireRumor.payload contains, per kind)
# ---------------------------------------------------------------------------


def encode_member_payload(record: PeerRecord, bloom: bytes) -> bytes:
    """JOIN/REJOIN payload: the member's record + compressed Bloom filter."""
    w = _Writer()
    _w_record(w, record)
    w.blob(bloom)
    return bytes(w.buf)


def decode_member_payload(payload: bytes) -> tuple[PeerRecord, bytes]:
    """Inverse of :func:`encode_member_payload`."""
    r = _Reader(payload)
    record = _r_record(r)
    bloom = r.blob()
    r.done()
    return record, bloom


def encode_update_payload(filter_version: int, diff: bytes) -> bytes:
    """BF_UPDATE payload: new filter version + Golomb-coded bit diff."""
    w = _Writer()
    w.u32(filter_version)
    w.blob(diff)
    return bytes(w.buf)


def decode_update_payload(payload: bytes) -> tuple[int, bytes]:
    """Inverse of :func:`encode_update_payload`."""
    r = _Reader(payload)
    version = r.u32()
    diff = r.blob()
    r.done()
    return version, diff
