"""Vector-space ranking: the centralized TF×IDF baseline and PlanetP's
distributed TF×IPF approximation (paper Section 5.2), with the adaptive
stopping heuristic (eq. 4) and recall/precision evaluation (eqs. 5-6).
"""

from repro.ranking.vsm import (
    document_term_weight,
    inverse_document_frequency,
    inverse_peer_frequency,
    similarity_from_parts,
)
from repro.ranking.tfidf import CentralizedTFIDF, RankedDoc
from repro.ranking.tfipf import (
    DistributedSearchResult,
    TFIPFSearch,
    PeerBackend,
    rank_peers,
)
from repro.ranking.stopping import (
    AdaptiveStopping,
    FirstKStopping,
    NeverStop,
    StoppingPolicy,
)
from repro.ranking.evaluation import (
    average_recall_precision,
    precision,
    recall,
)

__all__ = [
    "document_term_weight",
    "inverse_document_frequency",
    "inverse_peer_frequency",
    "similarity_from_parts",
    "CentralizedTFIDF",
    "RankedDoc",
    "DistributedSearchResult",
    "TFIPFSearch",
    "PeerBackend",
    "rank_peers",
    "AdaptiveStopping",
    "FirstKStopping",
    "NeverStop",
    "StoppingPolicy",
    "average_recall_precision",
    "precision",
    "recall",
]
