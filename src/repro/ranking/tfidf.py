"""The centralized TF×IDF oracle (the paper's comparison baseline).

"We assume the following optimistic implementation of TFxIDF: each peer in
the community has the full inverted index and word count needed to run
TFxIDF using ranking equation 2.  For each query, TFxIDF would compute the
top k ranking documents and then contact the exact peers required to
retrieve these documents." (Section 7.3)

The engine indexes an entire collection into one global
:class:`~repro.text.invindex.InvertedIndex` and ranks with eq. 2.  Scoring
accumulates per-document weighted sums in a dict keyed by doc id —
postings lists for the few query terms are the only thing traversed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.text.invindex import InvertedIndex
from repro.ranking.vsm import (
    document_term_weight,
    inverse_document_frequency,
    similarity_from_parts,
)

__all__ = ["RankedDoc", "CentralizedTFIDF"]


@dataclass(frozen=True)
class RankedDoc:
    """One entry in a ranked result list."""

    doc_id: str
    score: float

    def __post_init__(self) -> None:
        if self.score < 0:
            raise ValueError("scores are non-negative by construction")


class CentralizedTFIDF:
    """Global-index TF×IDF ranking over a full collection."""

    def __init__(self) -> None:
        self._index = InvertedIndex()

    @property
    def index(self) -> InvertedIndex:
        """The underlying global inverted index."""
        return self._index

    def add_document(self, doc_id: str, term_freqs: Mapping[str, int]) -> None:
        """Index one document (term -> frequency)."""
        self._index.add_document(doc_id, term_freqs)

    def num_documents(self) -> int:
        """Collection size N."""
        return self._index.num_documents()

    def idf(self, term: str) -> float:
        """IDF_t over this collection; 0.0 if the term never occurs."""
        f_t = self._index.collection_frequency(term)
        if f_t == 0:
            return 0.0
        return inverse_document_frequency(self.num_documents(), f_t)

    def score_documents(self, query_terms: Sequence[str]) -> dict[str, float]:
        """Sim(Q, D) for every document matching at least one query term."""
        sums: dict[str, float] = {}
        for term in set(query_terms):
            idf = self.idf(term)
            if idf == 0.0:
                continue
            for doc_id, tf in self._index.postings_map(term).items():
                sums[doc_id] = sums.get(doc_id, 0.0) + document_term_weight(tf) * idf
        return {
            doc_id: similarity_from_parts(s, self._index.document_length(doc_id))
            for doc_id, s in sums.items()
        }

    def rank(self, query_terms: Sequence[str], k: int) -> list[RankedDoc]:
        """Top-``k`` documents for the query, best first.

        Ties break on doc id for determinism across runs.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        scores = self.score_documents(query_terms)
        ordered = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        return [RankedDoc(doc_id, score) for doc_id, score in ordered]

    def peers_required(
        self, ranked: Iterable[RankedDoc], doc_owner: Mapping[str, int]
    ) -> set[int]:
        """The exact peer set holding the ranked documents (the oracle's
        'contact the exact peers required' step)."""
        return {doc_owner[r.doc_id] for r in ranked}
