"""PlanetP's distributed TF×IPF search (paper Section 5.2).

The ranking problem is split in two:

1. **Node ranking** — each peer i gets relevance
   ``R_i(Q) = sum_{t in Q and t in BF_i} IPF_t`` (eq. 3), where IPF is
   computed locally from the gossiped Bloom filters: N = number of
   filters, N_t = filters hitting term t.  Bloom filter false positives
   can inflate N_t slightly and rank a peer that lacks the term — exactly
   the approximation the paper accepts.

2. **Selection** — contact peers in rank order (optionally in parallel
   groups of m), merge their locally-scored documents (eq. 2 with IPF_t
   substituted for IDF_t), and stop per the stopping policy.

The searcher is decoupled from the community through the tiny
:class:`PeerBackend` protocol so it can run against the in-process
community, the simulator, or tests' stub peers alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.bloom.filter import BloomFilter
from repro.ranking.stopping import AdaptiveStopping, StoppingPolicy
from repro.ranking.tfidf import RankedDoc
from repro.ranking.vsm import inverse_peer_frequency

__all__ = ["PeerBackend", "rank_peers", "compute_ipf", "TFIPFSearch", "DistributedSearchResult"]


class PeerBackend(Protocol):
    """What the distributed searcher needs from a community."""

    def online_peer_ids(self) -> list[int]:
        """Ids of peers whose directory entries are usable."""
        ...

    def peer_filter(self, peer_id: int) -> BloomFilter:
        """The (locally replicated) Bloom filter of ``peer_id``."""
        ...

    def query_peer(
        self, peer_id: int, terms: Sequence[str], ipf: dict[str, float], k: int
    ) -> list[RankedDoc]:
        """Ask ``peer_id`` for its local top-``k`` documents for the query,
        scored with eq. 2 using the supplied IPF weights."""
        ...


def compute_ipf(
    terms: Sequence[str], backend: PeerBackend
) -> tuple[dict[str, float], dict[int, list[str]]]:
    """IPF per query term, plus each peer's hit list.

    One pass over the replicated filters yields both N_t (for IPF) and the
    per-peer term hits needed for eq. 3.  Backends exposing
    ``filter_hit_matrix`` (the in-process community, the network replica
    backend) answer that pass with one vectorized peer × term gather —
    the query is hashed once instead of once per peer.
    """
    term_list = list(dict.fromkeys(terms))
    matrix_fn = getattr(backend, "filter_hit_matrix", None)
    if matrix_fn is not None:
        peer_ids, hits = matrix_fn(term_list)
        n = len(peer_ids)
        n_t_arr = hits.sum(axis=0)
        hits_per_peer = {
            pid: [t for t, h in zip(term_list, hits[i]) if h]
            for i, pid in enumerate(peer_ids)
            if hits[i].any()
        }
        ipf = {
            t: inverse_peer_frequency(n, int(n_t_arr[i]))
            for i, t in enumerate(term_list)
        }
        return ipf, hits_per_peer
    peer_ids = backend.online_peer_ids()
    n = len(peer_ids)
    hits_per_peer = {}
    n_t = {t: 0 for t in term_list}
    for pid in peer_ids:
        hits = backend.peer_filter(pid).contains_each(term_list)
        peer_hits = [t for t, h in zip(term_list, hits) if h]
        if peer_hits:
            hits_per_peer[pid] = peer_hits
            for t in peer_hits:
                n_t[t] += 1
    ipf = {t: inverse_peer_frequency(n, n_t[t]) for t in term_list}
    return ipf, hits_per_peer


def rank_peers(
    terms: Sequence[str], backend: PeerBackend
) -> tuple[list[tuple[int, float]], dict[str, float]]:
    """Eq. 3 peer ranking: ``[(peer_id, R_i)]`` best-first, plus the IPF map.

    Peers with zero relevance (no query term in their filter) are omitted;
    ties break on peer id for determinism.
    """
    ipf, hits_per_peer = compute_ipf(terms, backend)
    scored = [
        (pid, sum(ipf[t] for t in peer_hits))
        for pid, peer_hits in hits_per_peer.items()
    ]
    scored = [(pid, r) for pid, r in scored if r > 0.0]
    scored.sort(key=lambda pr: (-pr[1], pr[0]))
    return scored, ipf


@dataclass
class DistributedSearchResult:
    """Outcome of one distributed ranked search."""

    results: list[RankedDoc]
    peers_contacted: list[int]
    peer_ranking: list[tuple[int, float]] = field(repr=False, default_factory=list)
    ipf: dict[str, float] = field(repr=False, default_factory=dict)

    @property
    def num_peers_contacted(self) -> int:
        """How many peers were actually queried."""
        return len(self.peers_contacted)

    def doc_ids(self) -> list[str]:
        """Ranked document ids, best first."""
        return [r.doc_id for r in self.results]


class TFIPFSearch:
    """The full Section 5.2 algorithm: rank peers, contact adaptively."""

    def __init__(
        self,
        backend: PeerBackend,
        stopping: StoppingPolicy | None = None,
        group_size: int = 1,
    ) -> None:
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        self.backend = backend
        self.stopping = stopping if stopping is not None else AdaptiveStopping()
        self.group_size = group_size

    def search(self, terms: Sequence[str], k: int) -> DistributedSearchResult:
        """Retrieve the top-``k`` documents for ``terms``.

        Contacts peers in eq. 3 order, in groups of ``group_size``; after
        each group, merges the returned documents into the running top-k
        and consults the stopping policy once per peer in the group (a
        group may overshoot the stopping point — the paper's stated
        trade-off of the parallel variant).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        ranking, ipf = rank_peers(terms, self.backend)
        community_size = len(self.backend.online_peer_ids())
        self.stopping.reset(community_size, k)

        top: dict[str, float] = {}
        contacted: list[int] = []
        for start in range(0, len(ranking), self.group_size):
            group = ranking[start : start + self.group_size]
            # The whole group is contacted in parallel — possibly past the
            # stopping point, the trade-off Section 5.2 accepts for
            # latency; responses are then merged in rank order.
            responses = [
                (pid, self.backend.query_peer(pid, terms, ipf, k))
                for pid, _relevance in group
            ]
            for pid, returned in responses:
                contacted.append(pid)
                contributed = self._merge(top, returned, k)
                self.stopping.observe(contributed, len(top))
            if self.stopping.should_stop():
                break

        ordered = sorted(top.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        return DistributedSearchResult(
            results=[RankedDoc(d, s) for d, s in ordered],
            peers_contacted=contacted,
            peer_ranking=ranking,
            ipf=ipf,
        )

    @staticmethod
    def _merge(top: dict[str, float], returned: list[RankedDoc], k: int) -> bool:
        """Merge ``returned`` into ``top`` (trimmed to k); return whether any
        returned document made it into the new top-k."""
        if not returned:
            return False
        for doc in returned:
            existing = top.get(doc.doc_id)
            if existing is None or doc.score > existing:
                top[doc.doc_id] = doc.score
        if len(top) > k:
            # Trim to the k best (ties break on doc id).
            keep = sorted(top.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
            kept_ids = {d for d, _ in keep}
            contributed = any(doc.doc_id in kept_ids for doc in returned)
            top.clear()
            top.update(keep)
            return contributed
        return True
