"""Recall and precision (paper eqs. 5-6) and query-set averaging.

    R(Q) = |presented ∩ relevant| / |relevant|
    P(Q) = |presented ∩ relevant| / |presented|

Figure 6 reports the *average* recall and precision over all provided
queries for each k.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.corpus.queries import Query

__all__ = ["recall", "precision", "average_recall_precision"]


def recall(presented: Iterable[str], relevant: frozenset[str] | set[str]) -> float:
    """Eq. 5.  Defined as 1.0 when there are no relevant documents
    (nothing to find, nothing missed)."""
    rel = set(relevant)
    if not rel:
        return 1.0
    hits = sum(1 for doc in set(presented) if doc in rel)
    return hits / len(rel)


def precision(presented: Iterable[str], relevant: frozenset[str] | set[str]) -> float:
    """Eq. 6.  Defined as 1.0 for an empty result list (no noise shown)."""
    shown = set(presented)
    if not shown:
        return 1.0
    rel = set(relevant)
    hits = sum(1 for doc in shown if doc in rel)
    return hits / len(shown)


def average_recall_precision(
    per_query_results: Sequence[tuple[Query, list[str]]],
) -> tuple[float, float]:
    """Mean recall and precision over ``(query, presented_doc_ids)`` pairs."""
    if not per_query_results:
        raise ValueError("no query results to average")
    recalls = []
    precisions = []
    for query, presented in per_query_results:
        recalls.append(recall(presented, query.relevant))
        precisions.append(precision(presented, query.relevant))
    return sum(recalls) / len(recalls), sum(precisions) / len(precisions)
