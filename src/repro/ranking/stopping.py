"""Stopping policies for the distributed search (paper Section 5.2).

The *selection problem*: after ranking peers, how many do we contact?
The paper's adaptive heuristic (eq. 4) tolerates

    p = floor(2 + N/300) + 2 * floor(k/50)

consecutive peers that fail to contribute to the current top-k before
stopping.  Two baselines are provided: the naive "stop once k documents
are retrieved" rule the paper dismisses ("this obvious approach leads to
terrible retrieval performance"), and a never-stop policy used to compute
exhaustive upper bounds.
"""

from __future__ import annotations

from typing import Protocol

from repro.constants import RankingConfig

__all__ = ["StoppingPolicy", "AdaptiveStopping", "FirstKStopping", "NeverStop"]


class StoppingPolicy(Protocol):
    """Decides when the peer-contact loop stops.

    The search loop calls :meth:`observe` after each contacted peer with
    whether that peer contributed at least one document to the current
    top-k, and the number of documents retrieved so far; it stops when
    :meth:`should_stop` returns true.
    """

    def reset(self, community_size: int, k: int) -> None:
        """Begin a new query against ``community_size`` peers, target ``k``."""
        ...

    def observe(self, contributed: bool, total_retrieved: int) -> None:
        """Record one contacted peer's outcome."""
        ...

    def should_stop(self) -> bool:
        """Whether to stop contacting further peers."""
        ...


class AdaptiveStopping:
    """The paper's eq. 4 heuristic."""

    def __init__(self, config: RankingConfig | None = None) -> None:
        self.config = config or RankingConfig()
        self._p = 0
        self._consecutive_unproductive = 0
        self._retrieved = 0
        self._k = 0

    def reset(self, community_size: int, k: int) -> None:
        """Begin a new query: compute eq. 4's p for this N and k."""
        self._p = self.config.stopping_p(community_size, k)
        self._consecutive_unproductive = 0
        self._retrieved = 0
        self._k = k

    @property
    def p(self) -> int:
        """Current tolerance: consecutive unproductive peers allowed."""
        return self._p

    def observe(self, contributed: bool, total_retrieved: int) -> None:
        """Track the consecutive-unproductive-peer streak."""
        self._retrieved = total_retrieved
        if contributed:
            self._consecutive_unproductive = 0
        else:
            self._consecutive_unproductive += 1

    def should_stop(self) -> bool:
        """Stop once k documents exist and p peers in a row added nothing."""
        # Only begin counting unproductive streaks once an initial set of k
        # documents exists ("the idea is to get an initial set of k documents
        # and then keep contacting nodes only if ...").
        if self._retrieved < self._k:
            return False
        return self._consecutive_unproductive >= self._p


class FirstKStopping:
    """Naive baseline: stop as soon as k documents have been retrieved."""

    def __init__(self) -> None:
        self._k = 0
        self._retrieved = 0

    def reset(self, community_size: int, k: int) -> None:
        """Begin a new query targeting ``k`` documents."""
        self._k = k
        self._retrieved = 0

    def observe(self, contributed: bool, total_retrieved: int) -> None:
        """Track how many documents have been retrieved."""
        self._retrieved = total_retrieved

    def should_stop(self) -> bool:
        """Stop the moment k documents have been retrieved."""
        return self._retrieved >= self._k


class NeverStop:
    """Contact every ranked peer (exhaustive upper bound)."""

    def reset(self, community_size: int, k: int) -> None:
        """Nothing to reset."""

    def observe(self, contributed: bool, total_retrieved: int) -> None:
        """Nothing to track."""

    def should_stop(self) -> bool:
        """Never stop: contact every ranked peer."""
        return False
