"""Vector-space model primitives (paper Section 5.2, after Witten et al.).

The weight system is::

    IDF_t   = log(1 + N / f_t)          (collection-level discrimination)
    IPF_t   = log(1 + N / N_t)          (peer-level analogue, from Bloom filters)
    w_{D,t} = 1 + log(f_{D,t})          (document term weight)
    w_{Q,t} = IDF_t (or IPF_t)          (query term weight)

and the similarity (eq. 2, |Q| dropped as constant)::

    Sim(Q, D) = sum_{t in Q} w_{D,t} * w_{Q,t} / sqrt(|D|)
"""

from __future__ import annotations

import math

__all__ = [
    "inverse_document_frequency",
    "inverse_peer_frequency",
    "document_term_weight",
    "similarity_from_parts",
]


def inverse_document_frequency(num_documents: int, term_frequency: int) -> float:
    """IDF_t = log(1 + N / f_t).

    ``f_t`` is the number of occurrences of the term in the collection; a
    term absent from the collection (f_t == 0) has undefined IDF and
    callers must skip it (it cannot match any document anyway).
    """
    if num_documents < 0:
        raise ValueError("num_documents must be non-negative")
    if term_frequency <= 0:
        raise ValueError("IDF undefined for a term with zero occurrences")
    return math.log(1.0 + num_documents / term_frequency)


def inverse_peer_frequency(num_peers: int, peers_with_term: int) -> float:
    """IPF_t = log(1 + N / N_t), N_t = peers whose Bloom filter hits t.

    Defined as 0 when no peer has the term (the term contributes nothing).
    """
    if num_peers < 0 or peers_with_term < 0:
        raise ValueError("counts must be non-negative")
    if peers_with_term == 0:
        return 0.0
    return math.log(1.0 + num_peers / peers_with_term)


def document_term_weight(term_frequency_in_doc: int) -> float:
    """w_{D,t} = 1 + log(f_{D,t}); 0 when the term is absent."""
    if term_frequency_in_doc < 0:
        raise ValueError("term frequency must be non-negative")
    if term_frequency_in_doc == 0:
        return 0.0
    return 1.0 + math.log(term_frequency_in_doc)


def similarity_from_parts(weighted_sum: float, doc_length: int) -> float:
    """Sim = weighted_sum / sqrt(|D|); 0 for an empty document."""
    if doc_length < 0:
        raise ValueError("doc_length must be non-negative")
    if doc_length == 0:
        return 0.0
    return weighted_sum / math.sqrt(doc_length)
