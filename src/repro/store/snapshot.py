"""Atomic, checksummed snapshots of a peer's local data store.

A snapshot captures everything :class:`~repro.core.datastore.LocalDataStore`
holds — documents, the inverted index (as per-document term frequencies),
and the Golomb-compressed Bloom filter — at one WAL sequence number, so
recovery is "load newest valid snapshot, replay the WAL suffix" with no
Analyzer run and no term re-hashing for snapshotted documents.

Durability protocol (also used by the directory checkpoint):

1. encode the payload into a CRC-guarded container
   (``magic + uint32 CRC32 + uint64 length + JSON bytes``);
2. write it to ``<name>.tmp`` in the same directory, flush, fsync;
3. ``os.replace`` onto the final name (atomic on POSIX);
4. fsync the directory so the rename itself is durable.

A crash at any step leaves either the old snapshot, or the old snapshot
plus a stray ``*.tmp`` (ignored and cleaned up by the next writer), or
the new snapshot — never a half-visible file under the real name.  On
load, any file failing magic/length/CRC validation is skipped and the
next-newest generation is tried, so even post-rename corruption (bit
rot) degrades to an older consistent state instead of a crash.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any

__all__ = [
    "SNAPSHOT_MAGIC",
    "atomic_write_bytes",
    "decode_container",
    "encode_container",
    "load_latest_snapshot",
    "prune_snapshots",
    "snapshot_path",
    "write_snapshot",
]

SNAPSHOT_MAGIC = b"PPSNAP01"
_HEADER = struct.Struct(">IQ")  # CRC32(payload), payload length

_SNAPSHOT_GLOB = "snapshot-*.ppsnap"


# -- the CRC container (shared with checkpoint.py) ---------------------------


def encode_container(magic: bytes, payload: dict[str, Any]) -> bytes:
    """Wrap a JSON payload in the magic + CRC + length container."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return magic + _HEADER.pack(zlib.crc32(body), len(body)) + body


def decode_container(magic: bytes, data: bytes) -> dict[str, Any]:
    """Inverse of :func:`encode_container`; raises ``ValueError`` on any
    validation failure (wrong magic, short file, CRC mismatch)."""
    prefix = len(magic) + _HEADER.size
    if data[: len(magic)] != magic:
        raise ValueError("bad magic")
    if len(data) < prefix:
        raise ValueError("truncated header")
    crc, length = _HEADER.unpack_from(data, len(magic))
    body = data[prefix : prefix + length]
    if len(body) < length:
        raise ValueError("truncated payload")
    if zlib.crc32(body) != crc:
        raise ValueError("CRC mismatch")
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("payload is not an object")
    return payload


def atomic_write_bytes(path: Path, blob: bytes) -> None:
    """Write ``blob`` to ``path`` via temp file + ``os.replace`` + fsyncs."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


# -- snapshot files ----------------------------------------------------------


def snapshot_path(data_dir: Path, seq: int) -> Path:
    """The canonical file name for the snapshot covering WAL seq ``seq``."""
    return Path(data_dir) / f"snapshot-{seq:020d}.ppsnap"


def write_snapshot(data_dir: Path, payload: dict[str, Any], *, keep: int = 2) -> Path:
    """Durably write a snapshot payload; prune older generations.

    ``payload`` must carry the ``"seq"`` it covers (the file is named by
    it, so lexicographic order is recovery order).  Returns the path.
    """
    data_dir = Path(data_dir)
    path = snapshot_path(data_dir, int(payload["seq"]))
    atomic_write_bytes(path, encode_container(SNAPSHOT_MAGIC, payload))
    prune_snapshots(data_dir, keep=keep)
    return path


def load_latest_snapshot(data_dir: Path) -> tuple[dict[str, Any] | None, Path | None]:
    """Newest snapshot that validates, or ``(None, None)``.

    Scans newest-first; torn or bit-rotted generations are skipped (a
    stray ``*.tmp`` from a crash mid-write never matches the glob).
    """
    data_dir = Path(data_dir)
    if not data_dir.is_dir():
        return None, None
    for path in sorted(data_dir.glob(_SNAPSHOT_GLOB), reverse=True):
        try:
            payload = decode_container(SNAPSHOT_MAGIC, path.read_bytes())
        except (ValueError, json.JSONDecodeError, OSError):
            continue
        if "seq" in payload:
            return payload, path
    return None, None


def prune_snapshots(data_dir: Path, *, keep: int = 2) -> list[Path]:
    """Delete all but the ``keep`` newest snapshot generations and any
    stray temp files.  Returns the removed paths."""
    data_dir = Path(data_dir)
    removed: list[Path] = []
    generations = sorted(data_dir.glob(_SNAPSHOT_GLOB), reverse=True)
    for stale in generations[keep:]:
        stale.unlink(missing_ok=True)
        removed.append(stale)
    for tmp in data_dir.glob(_SNAPSHOT_GLOB + ".tmp"):
        tmp.unlink(missing_ok=True)
        removed.append(tmp)
    return removed
