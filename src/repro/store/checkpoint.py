"""Directory checkpoints: persist a node's replicated global directory.

The paper's directory is soft state — a restarting peer re-learns every
member record and Bloom filter over gossip, which for an N-member
community means re-transferring N compressed filters (the dominant term
of a cold join, Section 3.2).  A checkpoint makes that state warm:
membership records, filter versions, the Golomb-compressed filters
(straight from the :mod:`repro.bloom.compress` version-keyed memo, so an
unchanged filter is never re-encoded), and the set of rumor ids the node
had learned.  On restart the node seeds its directory and anti-entropy
digest from the checkpoint, so a digest comparison with any live peer
resolves to "nothing new" (or a small recent-window pull) instead of a
full snapshot transfer.

Checkpoints are written with the same atomic CRC container as snapshots
(:mod:`repro.store.snapshot`); a corrupt or missing file simply means a
cold join — never an error.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from pathlib import Path

from repro.store.snapshot import atomic_write_bytes, decode_container, encode_container

__all__ = ["CHECKPOINT_MAGIC", "CheckpointEntry", "DirectoryCheckpoint",
           "SUBSCRIPTIONS_MAGIC", "SubscriptionEntry", "SubscriptionCheckpoint",
           "load_checkpoint", "save_checkpoint",
           "load_subscriptions", "save_subscriptions"]

CHECKPOINT_MAGIC = b"PPDIR001"
SUBSCRIPTIONS_MAGIC = b"PPSUB001"


@dataclass(frozen=True)
class CheckpointEntry:
    """One persisted directory row (another member, never ourselves)."""

    peer_id: int
    address: str
    online: bool
    filter_version: int
    #: Golomb-compressed Bloom filter bytes (empty = no replica held).
    bloom: bytes


@dataclass(frozen=True)
class DirectoryCheckpoint:
    """A node's directory state at one instant."""

    peer_id: int
    #: wall-clock write time (``time.time()``), for staleness accounting.
    written_at: float
    entries: tuple[CheckpointEntry, ...]
    #: rumor ids known at checkpoint time; restoring them (and their XOR
    #: digest) is what lets anti-entropy short-circuit after a restart.
    known_rids: tuple[int, ...]
    #: the node's next rumor sequence number.  Restored (plus a safety
    #: gap) so rumors minted after a restart never reuse a previous
    #: life's rids — a reused rid is "already known" community-wide and
    #: the rumor carrying it can never spread.
    next_rid_seq: int = 0


def save_checkpoint(path: str | Path, checkpoint: DirectoryCheckpoint) -> int:
    """Durably write ``checkpoint`` to ``path``; returns bytes written."""
    payload = {
        "peer_id": checkpoint.peer_id,
        "written_at": checkpoint.written_at,
        "entries": [
            {
                "id": e.peer_id,
                "addr": e.address,
                "online": e.online,
                "fv": e.filter_version,
                "bloom": base64.b64encode(e.bloom).decode("ascii"),
            }
            for e in checkpoint.entries
        ],
        "rids": list(checkpoint.known_rids),
        "next_seq": checkpoint.next_rid_seq,
    }
    blob = encode_container(CHECKPOINT_MAGIC, payload)
    atomic_write_bytes(Path(path), blob)
    return len(blob)


@dataclass(frozen=True)
class SubscriptionEntry:
    """One persisted standing query (:mod:`repro.serve.subscriptions`)."""

    sub_id: int
    terms: tuple[str, ...]
    notify_address: str
    created_at: float
    #: doc ids already delivered — restored so a warm restart never
    #: re-fires upcalls the subscriber has seen.
    delivered: tuple[str, ...]


@dataclass(frozen=True)
class SubscriptionCheckpoint:
    """A serving node's registered persistent queries at one instant."""

    peer_id: int
    written_at: float
    next_sub_id: int
    entries: tuple[SubscriptionEntry, ...]


def save_subscriptions(path: str | Path, ckpt: SubscriptionCheckpoint) -> int:
    """Durably write ``ckpt`` to ``path``; returns bytes written."""
    payload = {
        "peer_id": ckpt.peer_id,
        "written_at": ckpt.written_at,
        "next_sub_id": ckpt.next_sub_id,
        "subs": [
            {
                "id": e.sub_id,
                "terms": list(e.terms),
                "addr": e.notify_address,
                "at": e.created_at,
                "delivered": sorted(e.delivered),
            }
            for e in ckpt.entries
        ],
    }
    blob = encode_container(SUBSCRIPTIONS_MAGIC, payload)
    atomic_write_bytes(Path(path), blob)
    return len(blob)


def load_subscriptions(path: str | Path) -> SubscriptionCheckpoint | None:
    """Read subscriptions back; ``None`` if missing, torn, or corrupt."""
    path = Path(path)
    try:
        payload = decode_container(SUBSCRIPTIONS_MAGIC, path.read_bytes())
        entries = tuple(
            SubscriptionEntry(
                int(e["id"]),
                tuple(str(t) for t in e["terms"]),
                str(e["addr"]),
                float(e["at"]),
                tuple(str(d) for d in e["delivered"]),
            )
            for e in payload["subs"]
        )
        return SubscriptionCheckpoint(
            int(payload["peer_id"]),
            float(payload["written_at"]),
            int(payload["next_sub_id"]),
            entries,
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def load_checkpoint(path: str | Path) -> DirectoryCheckpoint | None:
    """Read a checkpoint back; ``None`` if missing, torn, or corrupt."""
    path = Path(path)
    try:
        payload = decode_container(CHECKPOINT_MAGIC, path.read_bytes())
        entries = tuple(
            CheckpointEntry(
                int(e["id"]),
                str(e["addr"]),
                bool(e["online"]),
                int(e["fv"]),
                base64.b64decode(e["bloom"]),
            )
            for e in payload["entries"]
        )
        return DirectoryCheckpoint(
            int(payload["peer_id"]),
            float(payload["written_at"]),
            entries,
            tuple(int(r) for r in payload["rids"]),
            int(payload.get("next_seq", 0)),
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None
