"""The document write-ahead log: append-only, CRC-guarded, torn-tail safe.

Every acknowledged mutation of a :class:`~repro.core.datastore.LocalDataStore`
(publish with its analyzed term frequencies, remove) is appended here and
fsynced *before* the caller's ``publish()`` returns, so a crash at any
instant loses at most operations that were never acknowledged.  Recovery
is a single forward scan: records are applied on top of the newest
snapshot until the first frame that fails validation, and the file is
truncated back to that last durable prefix — a torn tail from a crash
mid-append can never poison a restart.

File layout::

    bytes 0-7   magic  b"PPWAL001"
    then, per record:
      uint32    payload length (big-endian)
      uint32    CRC32 of the payload
      payload   UTF-8 JSON object (op, seq, doc id, term freqs, ...)

A record is durable iff its full frame is on disk and the CRC matches.
Anything else — short header, short payload, CRC mismatch, absurd
length, undecodable JSON — ends the durable prefix.  The scan is
deliberately forgiving: a WAL is never "corrupt", it just ends early.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, BinaryIO

from repro.obs import Registry, global_registry

__all__ = ["WriteAheadLog", "WAL_MAGIC"]

WAL_MAGIC = b"PPWAL001"
_FRAME = struct.Struct(">II")  # payload length, CRC32(payload)

#: Upper bound on one record; a length field beyond this is treated as
#: corruption (it would otherwise make the scanner swallow gigabytes).
_MAX_RECORD_BYTES = 64 * 1024 * 1024


class WriteAheadLog:
    """An append-only record log backing one data store.

    Usage: construct, :meth:`open` (which scans, truncates any torn
    tail, and returns the replayable records), then :meth:`append` for
    each new operation.  :meth:`reset` empties the log after a snapshot
    has made its contents redundant.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        registry: Registry | None = None,
    ) -> None:
        self.path = Path(path)
        self.fsync = fsync
        obs = registry if registry is not None else global_registry()
        self._c_appends = obs.counter(
            "store", "wal_records_total", "records appended to the WAL"
        )
        self._c_bytes = obs.counter(
            "store", "wal_bytes_total", "bytes appended to the WAL"
        )
        self._c_fsyncs = obs.counter(
            "store", "wal_fsyncs_total", "fsync calls made durable by the WAL"
        )
        self._c_torn = obs.counter(
            "store",
            "wal_torn_tails_total",
            "recoveries that truncated an invalid WAL tail",
        )
        self._file: BinaryIO | None = None

    # -- recovery ------------------------------------------------------------

    def open(self) -> list[dict[str, Any]]:
        """Scan the log, drop any invalid tail, and open for appending.

        Returns the decoded records of the durable prefix, oldest first.
        A missing file is created; a file with a bad magic header is
        treated as wholly invalid (equivalent to an empty log).
        """
        if self._file is not None:
            raise RuntimeError("WAL is already open")
        records: list[dict[str, Any]] = []
        if self.path.exists():
            data = self.path.read_bytes()
            records, durable_end = self._scan(data)
            if durable_end < len(data):
                self._c_torn.inc()
                with open(self.path, "r+b") as fh:
                    fh.truncate(durable_end)
                    self._sync(fh)
        else:
            self._write_header()
        if not self.path.exists() or self.path.stat().st_size < len(WAL_MAGIC):
            # Bad-magic scan truncated to zero (or creation raced): lay
            # down a fresh header before appends resume.
            self._write_header()
        self._file = open(self.path, "ab")
        return records

    @staticmethod
    def _scan(data: bytes) -> tuple[list[dict[str, Any]], int]:
        """Decode the durable prefix of raw log bytes.

        Returns ``(records, end_offset)`` where ``end_offset`` is the
        byte offset just past the last valid record (0 for a bad magic).
        """
        if data[: len(WAL_MAGIC)] != WAL_MAGIC:
            return [], 0
        records: list[dict[str, Any]] = []
        offset = len(WAL_MAGIC)
        while True:
            header = data[offset : offset + _FRAME.size]
            if len(header) < _FRAME.size:
                break  # clean end of log, or a torn frame header
            length, crc = _FRAME.unpack(header)
            if length > _MAX_RECORD_BYTES:
                break
            payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
            if len(payload) < length:
                break  # torn payload
            if zlib.crc32(payload) != crc:
                break  # bit rot or an interrupted overwrite
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            if not isinstance(record, dict):
                break
            records.append(record)
            offset += _FRAME.size + length
        return records, offset

    # -- appending -----------------------------------------------------------

    def append(self, record: dict[str, Any]) -> int:
        """Append one record and (by default) fsync it durable.

        Returns the number of bytes written.  The record must be
        JSON-serializable; when :meth:`append` returns, the record
        survives any crash.
        """
        if self._file is None:
            raise RuntimeError("WAL is not open")
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.write(frame)
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
            self._c_fsyncs.inc()
        self._c_appends.inc()
        self._c_bytes.inc(len(frame))
        return len(frame)

    def reset(self) -> None:
        """Empty the log (its contents are covered by a durable snapshot).

        A crash mid-reset leaves a short or headerless file, which the
        next :meth:`open` treats as an empty log — safe either way,
        because a reset only ever follows a completed snapshot.
        """
        if self._file is not None:
            self._file.close()
            self._file = None
        self._write_header()
        self._file = open(self.path, "ab")

    def _write_header(self) -> None:
        with open(self.path, "wb") as fh:
            fh.write(WAL_MAGIC)
            self._sync(fh)

    def _sync(self, fh: BinaryIO) -> None:
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())
            self._c_fsyncs.inc()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the file handle (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    @property
    def size_bytes(self) -> int:
        """Current on-disk size of the log file."""
        return self.path.stat().st_size if self.path.exists() else 0

    def __repr__(self) -> str:
        return f"WriteAheadLog(path={str(self.path)!r}, bytes={self.size_bytes})"
