"""repro.store — durable persistence and warm restart for PlanetP nodes.

The paper's peers are assumed to come and go constantly (Section 3.2),
but a pure-RAM node pays a full cold rebuild on every restart: re-analyze
the corpus, re-learn the whole global directory over gossip.  This
package makes local state durable, in three layers:

``wal``         an append-only, CRC32-guarded, torn-tail-tolerant record
                log of publish/remove operations (with their analyzed
                term frequencies, so replay never runs the Analyzer)
``snapshot``    atomic (temp file + ``os.replace``) checksummed
                snapshots of the documents, inverted index, and
                compressed Bloom filter; recovery = newest valid
                snapshot + WAL suffix
``checkpoint``  the replicated directory (membership, filter versions,
                Golomb-compressed Bloom filters) persisted so a
                restarting node seeds anti-entropy from its last known
                view instead of re-fetching every filter

``persistent_store.PersistentDataStore`` ties the first two into a
drop-in replacement for :class:`~repro.core.datastore.LocalDataStore`;
:class:`~repro.net.node.NetworkPeer` accepts a ``data_dir`` and wires in
all three (see ``python -m repro.net --data-dir``).
"""

from repro.store.checkpoint import (
    CheckpointEntry,
    DirectoryCheckpoint,
    SubscriptionCheckpoint,
    SubscriptionEntry,
    load_checkpoint,
    load_subscriptions,
    save_checkpoint,
    save_subscriptions,
)
from repro.store.chunkstore import ChunkStore, ContentNotFound, build_manifest
from repro.store.persistent_store import PersistentDataStore, RecoveryInfo
from repro.store.snapshot import (
    load_latest_snapshot,
    prune_snapshots,
    snapshot_path,
    write_snapshot,
)
from repro.store.wal import WriteAheadLog

__all__ = [
    "CheckpointEntry",
    "ChunkStore",
    "ContentNotFound",
    "build_manifest",
    "DirectoryCheckpoint",
    "PersistentDataStore",
    "RecoveryInfo",
    "SubscriptionCheckpoint",
    "SubscriptionEntry",
    "WriteAheadLog",
    "load_checkpoint",
    "load_subscriptions",
    "save_subscriptions",
    "load_latest_snapshot",
    "prune_snapshots",
    "save_checkpoint",
    "snapshot_path",
    "write_snapshot",
]
