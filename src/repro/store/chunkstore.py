"""Durable chunk storage for the content plane (:mod:`repro.content`).

A :class:`ChunkStore` holds, per document, a :class:`ContentManifest`
(the transfer contract: chunk CRC-32s plus the whole-document SHA-256)
and the chunk bytes themselves.  With a root directory every write is
crash-safe — chunks land via temp file + ``os.replace`` *before* the
manifest does, so after ``kill -9`` a document is either fully readable
or invisible, never a manifest pointing at garbage:

.. code-block:: text

    <root>/<key>/manifest.bin    PPCNT001 magic + u32 CRC + packed manifest
    <root>/<key>/c00000042.bin   raw chunk bytes (CRC'd against the manifest)

``<key>`` is a hex digest of the doc id, so arbitrary ids stay
filesystem-safe.  Without a root the store is a plain in-memory dict —
the loopback/test configuration.

Reads verify CRCs: a corrupt or torn chunk raises
:class:`ContentNotFound` exactly like an absent one, which makes the
replication plane re-fetch it instead of serving bad bytes.
"""

from __future__ import annotations

import hashlib
import os
import struct
import zlib
from pathlib import Path

from repro.gossip.wire import ContentManifest
from repro.store.snapshot import atomic_write_bytes

__all__ = ["ChunkStore", "ContentNotFound", "build_manifest", "chunk_bounds"]

_MAGIC = b"PPCNT001"
_HEADER = struct.Struct(">4I")  # body CRC, doc-id len, digest len, num chunks
_FIXED = struct.Struct(">IQI")  # origin, total_size, chunk_size


class ContentNotFound(KeyError):
    """A document id (or one of its chunks) could not be resolved.

    Subclasses :class:`KeyError` — and therefore :class:`LookupError` —
    so callers that caught the untyped errors the content paths used to
    leak keep working.
    """

    def __init__(self, doc_id: str, detail: str = "") -> None:
        super().__init__(doc_id)
        self.doc_id = doc_id
        self.detail = detail

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"content not found: {self.doc_id!r}{suffix}"


def chunk_bounds(total_size: int, chunk_size: int, index: int) -> tuple[int, int]:
    """Byte range ``[start, end)`` of chunk ``index`` within a document."""
    start = index * chunk_size
    end = min(start + chunk_size, total_size)
    if start >= end and not (total_size == 0 and index == 0):
        raise ValueError(f"chunk {index} outside document of {total_size} bytes")
    return start, end


def build_manifest(
    doc_id: str, origin: int, data: bytes, chunk_size: int
) -> ContentManifest:
    """Compute a document's manifest: per-chunk CRC-32s + SHA-256 digest."""
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    crcs = tuple(
        zlib.crc32(data[start : start + chunk_size])
        for start in range(0, len(data), chunk_size)
    )
    return ContentManifest(
        doc_id=doc_id,
        origin=origin,
        total_size=len(data),
        chunk_size=chunk_size,
        digest=hashlib.sha256(data).digest(),
        chunk_crcs=crcs,
    )


def _pack_manifest(m: ContentManifest) -> bytes:
    doc_id = m.doc_id.encode("utf-8")
    body = bytearray()
    body += _FIXED.pack(m.origin, m.total_size, m.chunk_size)
    body += doc_id
    body += m.digest
    for crc in m.chunk_crcs:
        body += struct.pack(">I", crc)
    head = _HEADER.pack(zlib.crc32(body), len(doc_id), len(m.digest), m.num_chunks)
    return _MAGIC + head + bytes(body)


def _unpack_manifest(blob: bytes) -> ContentManifest:
    if len(blob) < len(_MAGIC) + _HEADER.size or blob[: len(_MAGIC)] != _MAGIC:
        raise ValueError("bad manifest magic")
    crc, id_len, digest_len, num_chunks = _HEADER.unpack_from(blob, len(_MAGIC))
    body = blob[len(_MAGIC) + _HEADER.size :]
    if zlib.crc32(body) != crc:
        raise ValueError("manifest CRC mismatch")
    expect = _FIXED.size + id_len + digest_len + 4 * num_chunks
    if len(body) != expect:
        raise ValueError("manifest length mismatch")
    origin, total_size, chunk_size = _FIXED.unpack_from(body, 0)
    pos = _FIXED.size
    doc_id = body[pos : pos + id_len].decode("utf-8")
    pos += id_len
    digest = body[pos : pos + digest_len]
    pos += digest_len
    crcs = tuple(
        struct.unpack_from(">I", body, pos + 4 * i)[0] for i in range(num_chunks)
    )
    return ContentManifest(doc_id, origin, total_size, chunk_size, digest, crcs)


class ChunkStore:
    """Per-document manifests + chunk bytes, durable when rooted."""

    def __init__(self, root: Path | None = None) -> None:
        self.root = root
        self._manifests: dict[str, ContentManifest] = {}
        self._chunks: dict[str, dict[int, bytes]] = {}
        if root is not None:
            root.mkdir(parents=True, exist_ok=True)
            self._recover()

    # -- layout -------------------------------------------------------------

    @staticmethod
    def _key(doc_id: str) -> str:
        return hashlib.sha256(doc_id.encode("utf-8")).hexdigest()[:24]

    def _doc_dir(self, doc_id: str) -> Path:
        assert self.root is not None
        return self.root / self._key(doc_id)

    def _recover(self) -> None:
        assert self.root is not None
        for manifest_path in sorted(self.root.glob("*/manifest.bin")):
            try:
                manifest = _unpack_manifest(manifest_path.read_bytes())
            except (OSError, ValueError):
                continue  # torn write: the doc was never fully stored
            self._manifests[manifest.doc_id] = manifest
            self._chunks.setdefault(manifest.doc_id, {})

    # -- writes -------------------------------------------------------------

    def put_manifest(self, manifest: ContentManifest) -> None:
        """Record a document's manifest (idempotent for an equal one)."""
        existing = self._manifests.get(manifest.doc_id)
        if existing == manifest:
            return
        if existing is not None:
            # Re-published document: drop the stale chunks first.
            self.remove_doc(manifest.doc_id)
        self._manifests[manifest.doc_id] = manifest
        self._chunks[manifest.doc_id] = {}
        if self.root is not None:
            doc_dir = self._doc_dir(manifest.doc_id)
            doc_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(doc_dir / "manifest.bin", _pack_manifest(manifest))

    def put_chunk(self, doc_id: str, index: int, data: bytes) -> None:
        """Store one chunk, verified against the manifest's CRC.

        Raises :class:`ContentNotFound` without a manifest for ``doc_id``
        and :class:`ValueError` when the bytes don't match the contract —
        a replica never accepts chunks it could not later prove valid.
        """
        manifest = self.get_manifest(doc_id)
        if not 0 <= index < manifest.num_chunks:
            raise ValueError(f"chunk index {index} outside manifest")
        start, end = chunk_bounds(manifest.total_size, manifest.chunk_size, index)
        if len(data) != end - start:
            raise ValueError(f"chunk {index} has {len(data)} bytes, want {end - start}")
        if zlib.crc32(data) != manifest.chunk_crcs[index]:
            raise ValueError(f"chunk {index} fails its manifest CRC")
        self._chunks.setdefault(doc_id, {})[index] = data
        if self.root is not None:
            atomic_write_bytes(self._doc_dir(doc_id) / f"c{index:08d}.bin", data)

    def ingest(self, doc_id: str, origin: int, data: bytes, chunk_size: int) -> ContentManifest:
        """Chunk a whole document into the store (the publish path).

        Unlike the replication receive path (manifest first, chunks
        streamed after — an interrupted push is visibly incomplete and
        re-filled from :meth:`missing_chunks`), a local publish persists
        every chunk *before* the manifest: after ``kill -9`` the document
        is either fully readable or invisible on recovery, never a
        manifest pointing at bytes that were never written.
        """
        manifest = build_manifest(doc_id, origin, data, chunk_size)
        if self._manifests.get(doc_id) == manifest and self.is_complete(doc_id):
            return manifest
        if doc_id in self._manifests:
            self.remove_doc(doc_id)
        # Stage the manifest in memory only, so chunk writes validate.
        self._manifests[doc_id] = manifest
        self._chunks[doc_id] = {}
        if self.root is not None:
            self._doc_dir(doc_id).mkdir(parents=True, exist_ok=True)
        for index in range(manifest.num_chunks):
            start = index * chunk_size
            self.put_chunk(doc_id, index, data[start : start + chunk_size])
        if self.root is not None:
            atomic_write_bytes(
                self._doc_dir(doc_id) / "manifest.bin", _pack_manifest(manifest)
            )
        return manifest

    def remove_doc(self, doc_id: str) -> int:
        """Drop a document; returns the chunk bytes freed."""
        if doc_id not in self._manifests:
            return 0
        freed = self.bytes_held(doc_id)
        del self._manifests[doc_id]
        self._chunks.pop(doc_id, None)
        if self.root is not None:
            doc_dir = self._doc_dir(doc_id)
            if doc_dir.is_dir():
                for path in doc_dir.iterdir():
                    path.unlink(missing_ok=True)
                os.rmdir(doc_dir)
        return freed

    # -- reads --------------------------------------------------------------

    def get_manifest(self, doc_id: str) -> ContentManifest:
        """Return the manifest for ``doc_id``, or raise ContentNotFound."""
        manifest = self._manifests.get(doc_id)
        if manifest is None:
            raise ContentNotFound(doc_id, "no manifest")
        return manifest

    def has_manifest(self, doc_id: str) -> bool:
        """True if a manifest for ``doc_id`` is stored (chunks may lag)."""
        return doc_id in self._manifests

    def get_chunk(self, doc_id: str, index: int) -> bytes:
        """One chunk's bytes, CRC-verified (corrupt counts as missing)."""
        manifest = self.get_manifest(doc_id)
        if not 0 <= index < manifest.num_chunks:
            raise ContentNotFound(doc_id, f"chunk {index} outside manifest")
        cached = self._chunks.get(doc_id, {}).get(index)
        if cached is not None:
            return cached
        if self.root is not None:
            path = self._doc_dir(doc_id) / f"c{index:08d}.bin"
            try:
                data = path.read_bytes()
            except OSError:
                raise ContentNotFound(doc_id, f"chunk {index} missing") from None
            if zlib.crc32(data) == manifest.chunk_crcs[index]:
                self._chunks.setdefault(doc_id, {})[index] = data
                return data
            raise ContentNotFound(doc_id, f"chunk {index} corrupt")
        raise ContentNotFound(doc_id, f"chunk {index} missing")

    def missing_chunks(self, doc_id: str) -> tuple[int, ...]:
        """Indices this store cannot serve (absent or corrupt)."""
        manifest = self.get_manifest(doc_id)
        missing = []
        for index in range(manifest.num_chunks):
            try:
                self.get_chunk(doc_id, index)
            except ContentNotFound:
                missing.append(index)
        return tuple(missing)

    def is_complete(self, doc_id: str) -> bool:
        """True if every chunk of ``doc_id`` is held (readable end to end)."""
        return self.has_manifest(doc_id) and not self.missing_chunks(doc_id)

    def read_doc(self, doc_id: str) -> bytes:
        """Reassemble a whole document, verifying the manifest digest."""
        manifest = self.get_manifest(doc_id)
        data = b"".join(
            self.get_chunk(doc_id, i) for i in range(manifest.num_chunks)
        )
        if hashlib.sha256(data).digest() != manifest.digest:
            raise ContentNotFound(doc_id, "digest mismatch")
        return data

    # -- inventory ----------------------------------------------------------

    def doc_ids(self) -> list[str]:
        """Sorted ids of every document with a stored manifest."""
        return sorted(self._manifests)

    def bytes_held(self, doc_id: str) -> int:
        """Bytes of locally-present chunks for ``doc_id`` (0 if unknown)."""
        manifest = self._manifests.get(doc_id)
        if manifest is None:
            return 0
        held = 0
        for index in range(manifest.num_chunks):
            try:
                held += len(self.get_chunk(doc_id, index))
            except ContentNotFound:
                pass
        return held
