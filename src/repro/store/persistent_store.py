"""`PersistentDataStore`: a crash-safe, warm-restarting local data store.

Wraps :class:`~repro.core.datastore.LocalDataStore` with the WAL +
snapshot machinery of this package:

* every ``publish``/``remove`` is appended to the WAL (with its analyzed
  term frequencies) and fsynced before the call returns — acknowledged
  operations survive SIGKILL;
* every ``snapshot_every`` WAL records, the full store (documents,
  inverted index, compressed Bloom filter) is snapshotted atomically and
  the WAL is reset;
* construction recovers: newest valid snapshot is loaded wholesale, the
  WAL suffix is replayed through the no-Analyzer apply paths, and any
  torn tail is truncated.  Recovery never raises on damaged files — it
  restores the last durable prefix.

The wrapper duck-types the read/write surface of ``LocalDataStore``
(``publish``, ``remove``, ``get``, ``bloom_filter``, ``index``, ``len``,
containment, ...), so a :class:`~repro.core.peer.PlanetPPeer` — and
therefore a live :class:`~repro.net.node.NetworkPeer` — can use it as a
drop-in ``store``.

Documents must carry JSON-serializable metadata to be persisted (the
CLI's corpus documents carry none).
"""

from __future__ import annotations

import base64
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.bloom.filter import BloomFilter
from repro.constants import BloomConfig, StoreConfig
from repro.core.datastore import LocalDataStore
from repro.obs import DEFAULT_LATENCY_BOUNDS, Registry, global_registry
from repro.store.snapshot import (
    atomic_write_bytes,
    load_latest_snapshot,
    write_snapshot,
)
from repro.store.wal import WriteAheadLog
from repro.text.analyzer import Analyzer
from repro.text.document import Document
from repro.text.xmlsnippets import XMLSnippet

__all__ = ["PersistentDataStore", "RecoveryInfo"]


@dataclass(frozen=True)
class RecoveryInfo:
    """What one construction-time recovery did."""

    snapshot_seq: int
    snapshot_path: Path | None
    replayed_records: int
    documents: int


class PersistentDataStore:
    """A :class:`LocalDataStore` made durable under a data directory."""

    def __init__(
        self,
        data_dir: str | Path,
        *,
        analyzer: Analyzer | None = None,
        bloom_config: BloomConfig | None = None,
        config: StoreConfig | None = None,
        registry: Registry | None = None,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.config = config or StoreConfig()
        self.obs = registry if registry is not None else global_registry()
        self.store = LocalDataStore(analyzer=analyzer, bloom_config=bloom_config)
        self.wal = WriteAheadLog(
            self.data_dir / "wal.log", fsync=self.config.fsync, registry=self.obs
        )
        self._h_snapshot = self.obs.histogram(
            "store",
            "snapshot_seconds",
            "wall time of one data-store snapshot write",
            bounds=DEFAULT_LATENCY_BOUNDS,
        )
        self._c_snapshots = self.obs.counter(
            "store", "snapshots_total", "data-store snapshots written"
        )
        self._c_snapshot_bytes = self.obs.counter(
            "store", "snapshot_bytes_total", "bytes written across snapshots"
        )
        self._c_replayed = self.obs.counter(
            "store",
            "recovery_replayed_records_total",
            "WAL records replayed during recoveries",
        )
        self._seq = 0
        self._records_since_snapshot = 0
        self._closed = False
        #: how many times this data dir has been opened, bumped durably at
        #: every construction.  Callers that mint identifiers which must
        #: never repeat across restarts (the node's rumor ids) key them to
        #: this, so even lives that crash before persisting any state of
        #: their own get a fresh namespace.
        self.incarnation = self._bump_incarnation()
        self.last_recovery = self._recover()
        self.obs.gauge(
            "store", "recovered_documents", "documents restored at last recovery"
        ).set(self.last_recovery.documents)
        # Subscribe the WAL only after recovery: replay must not re-log.
        self.store.on_operation = self._log_operation

    # -- recovery ------------------------------------------------------------

    def _bump_incarnation(self) -> int:
        """Read, increment, and durably rewrite the incarnation counter."""
        path = self.data_dir / "incarnation"
        try:
            count = int(path.read_text().strip())
        except (OSError, ValueError):
            count = 0  # first open, or a damaged counter: restart at one
        count += 1
        atomic_write_bytes(path, str(count).encode("ascii"))
        return count

    def _recover(self) -> RecoveryInfo:
        payload, snap_path = load_latest_snapshot(self.data_dir)
        snap_seq = 0
        if payload is not None:
            snap_seq = int(payload["seq"])
            entries = [
                (Document(d["id"], d["text"], d.get("meta") or {}), d["tf"])
                for d in payload["docs"]
            ]
            bloom: BloomFilter | None = None
            blob = payload.get("bloom", "")
            if blob:
                try:
                    bloom = BloomFilter.from_compressed(
                        base64.b64decode(blob),
                        num_hashes=self.store.bloom_config.num_hashes,
                    )
                except ValueError:
                    bloom = None  # restore() rebuilds from the index
            self.store.restore(entries, bloom, int(payload["filter_version"]))
        replayed = 0
        # Filter inserts are deferred and batched: replaying N records
        # hashes each distinct term once, not once per occurrence.
        pending_terms: set[str] = set()
        for record in self.wal.open():
            seq = int(record.get("seq", 0))
            if seq <= snap_seq:
                continue  # the snapshot already covers it (crash between
                # snapshot write and WAL reset leaves such records behind)
            if self._apply_record(record, pending_terms):
                replayed += 1
            self._seq = max(self._seq, seq)
        if pending_terms:
            self.store.bulk_add_terms(pending_terms)
        self._seq = max(self._seq, snap_seq)
        self._records_since_snapshot = replayed
        if replayed:
            self._c_replayed.inc(replayed)
        return RecoveryInfo(snap_seq, snap_path, replayed, len(self.store))

    def _apply_record(
        self, record: Mapping[str, object], pending_terms: set[str]
    ) -> bool:
        op = record.get("op")
        doc_id = record.get("id")
        if not isinstance(doc_id, str):
            return False
        if op == "publish":
            if doc_id in self.store:
                return False
            tf = record.get("tf")
            if not isinstance(tf, dict):
                return False
            doc = Document(doc_id, str(record.get("text", "")), record.get("meta") or {})
            self.store.apply_publish(doc, tf, update_filter=False)
            pending_terms.update(tf)
        elif op == "remove":
            if doc_id not in self.store:
                return False
            self.store.apply_remove(doc_id)
        else:
            return False  # unknown op (a newer format); skip, don't die
        fv = record.get("fv")
        if isinstance(fv, int):
            # Keep the gossiped filter version monotone across restarts so
            # replicas holding the pre-crash version accept our updates.
            self.store.filter_version = max(self.store.filter_version, fv)
        return True

    # -- logging -------------------------------------------------------------

    def _log_operation(
        self, op: str, doc: Document, term_freqs: Mapping[str, int] | None
    ) -> None:
        self._seq += 1
        record: dict[str, object] = {
            "seq": self._seq,
            "op": op,
            "id": doc.doc_id,
            "fv": self.store.filter_version,
        }
        if op == "publish":
            record["text"] = doc.text
            if doc.metadata:
                record["meta"] = dict(doc.metadata)
            record["tf"] = dict(term_freqs or {})
        self.wal.append(record)
        self._records_since_snapshot += 1
        if self._records_since_snapshot >= self.config.snapshot_every:
            self.snapshot()

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> Path:
        """Write a full snapshot now and reset the WAL.

        Called automatically every ``snapshot_every`` records and on
        :meth:`close`; callers may also force one (e.g. before a planned
        restart, to make the next recovery a pure snapshot load).
        """
        started = time.perf_counter()
        per_doc: dict[str, dict[str, int]] = {
            doc_id: {} for doc_id in self.store.document_ids()
        }
        index = self.store.index
        for term in index.terms():
            for doc_id, tf in index.postings_map(term).items():
                per_doc[doc_id][term] = tf
        docs = []
        for doc_id, tf in per_doc.items():
            doc = self.store.get(doc_id)
            entry: dict[str, object] = {"id": doc_id, "text": doc.text, "tf": tf}
            if doc.metadata:
                entry["meta"] = dict(doc.metadata)
            docs.append(entry)
        payload = {
            "seq": self._seq,
            "filter_version": self.store.filter_version,
            "bloom": base64.b64encode(
                self.store.bloom_filter.to_compressed()
            ).decode("ascii"),
            "docs": docs,
        }
        path = write_snapshot(self.data_dir, payload, keep=self.config.snapshot_keep)
        self.wal.reset()
        self._records_since_snapshot = 0
        self._c_snapshots.inc()
        self._c_snapshot_bytes.inc(path.stat().st_size)
        self._h_snapshot.observe(time.perf_counter() - started)
        return path

    def close(self, *, snapshot: bool = True) -> None:
        """Flush (optionally snapshotting pending WAL records) and close."""
        if self._closed:
            return
        if snapshot and self._records_since_snapshot > 0:
            self.snapshot()
        self.store.on_operation = None
        self.wal.close()
        self._closed = True

    # -- the LocalDataStore surface (delegation) ----------------------------

    @property
    def analyzer(self) -> Analyzer:
        """The shared analysis pipeline."""
        return self.store.analyzer

    @property
    def bloom_config(self) -> BloomConfig:
        """The Bloom sizing of the wrapped store."""
        return self.store.bloom_config

    @property
    def index(self):
        """The live inverted index."""
        return self.store.index

    @property
    def bloom_filter(self) -> BloomFilter:
        """The current summary filter."""
        return self.store.bloom_filter

    @property
    def filter_version(self) -> int:
        """The gossiped filter version counter."""
        return self.store.filter_version

    def publish(self, item: Document | XMLSnippet) -> Document:
        """Publish durably: WAL-appended and fsynced before returning."""
        return self.store.publish(item)

    def remove(self, doc_id: str) -> Document:
        """Remove durably."""
        return self.store.remove(doc_id)

    def regenerate_filter(self) -> BloomFilter:
        """Rebuild the Bloom filter from the live index."""
        return self.store.regenerate_filter()

    def get(self, doc_id: str) -> Document:
        """Fetch a stored document."""
        return self.store.get(doc_id)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self.store

    def __len__(self) -> int:
        return len(self.store)

    def document_ids(self) -> Iterator[str]:
        """Iterate stored document ids."""
        return self.store.document_ids()

    def num_terms(self) -> int:
        """Distinct indexed terms."""
        return self.store.num_terms()

    def __repr__(self) -> str:
        return (
            f"PersistentDataStore(dir={str(self.data_dir)!r}, docs={len(self)}, "
            f"seq={self._seq}, wal_bytes={self.wal.size_bytes})"
        )
