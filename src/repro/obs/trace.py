"""A bounded log of structured runtime events.

Counters say *how much*; traces say *what happened, in what order*.  The
gossip protocol's interesting moments — a round starting, a rumor being
pushed, anti-entropy firing, a peer getting marked offline or rejoining,
a retry being scheduled, a search wave going out, a fault being injected
— each become one :class:`TraceEvent` in a fixed-capacity ring buffer,
so a long-lived node keeps a sliding window of recent protocol history
at O(capacity) memory, and a chaos test can assert *how* the protocol
converged rather than only that it did.

Events are JSON-friendly by construction and export as JSON-lines
(:meth:`TraceLog.to_jsonl`), one object per line, ready for ``jq`` or a
log shipper.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Callable, NamedTuple

__all__ = ["TraceEvent", "TraceLog"]


class TraceEvent(NamedTuple):
    """One structured event: a monotone sequence number, a timestamp
    from the log's clock, a ``kind`` tag, and free-form fields.

    A NamedTuple rather than a dataclass: events are minted on the
    gossip hot path, and tuple construction is several times cheaper
    than frozen-dataclass ``__init__`` while staying immutable.
    """

    seq: int
    time: float
    kind: str
    fields: dict

    def to_json(self) -> str:
        """This event as one compact JSON object."""
        record: dict[str, object] = {"seq": self.seq, "time": self.time, "kind": self.kind}
        record.update(self.fields)
        return json.dumps(record, sort_keys=True, default=str)


class TraceLog:
    """Fixed-capacity ring buffer of :class:`TraceEvent`.

    ``clock`` stamps events (inject a virtual clock for deterministic
    tests).  Appends are thread-safe and O(1); once full, the oldest
    event is evicted — ``dropped`` counts how many were lost that way.
    """

    def __init__(
        self,
        capacity: int = 1024,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self.dropped = 0
        self._seq = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def emit(self, kind: str, /, **fields) -> TraceEvent:
        """Append one event; returns it (mainly for tests)."""
        lock = self._lock
        lock.acquire()
        try:
            event = TraceEvent(self._seq, float(self.clock()), kind, fields)
            self._seq += 1
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
            return event
        finally:
            lock.release()

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """Buffered events oldest-first, optionally filtered by kind."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        return events

    def to_jsonl(self) -> str:
        """All buffered events as JSON-lines (one object per line)."""
        events = self.events()
        return "\n".join(e.to_json() for e in events) + ("\n" if events else "")

    def clear(self) -> None:
        """Drop all buffered events (sequence numbers keep counting)."""
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
