"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The paper's evaluation is all measurement — per-peer gossip bandwidth
(Fig 4c, Table 2), convergence times (Figs 2-5), search fan-out (Fig 6,
Table 3) — and the simulator has plumbing for it, but a live
:class:`~repro.net.node.NetworkPeer` needs its own: cheap, dependency-free
instruments it can bump on the hot path and export on demand.

One :class:`Registry` serves a whole process.  Instruments are keyed by
``(component, name)`` — ``("transport", "bytes_sent_total")``,
``("node", "gossip_rounds_total")`` — so every subsystem registers into
the same namespace and a single :meth:`Registry.render_text` dump (or
:meth:`Registry.samples` flattening, used by the ``StatsResponse`` wire
message) covers the node.

Three instrument kinds, all thread-safe (metrics may be bumped from
worker threads even though the node itself is asyncio single-threaded):

* :class:`Counter` — monotone float accumulator (``inc`` rejects
  negative deltas);
* :class:`Gauge` — a value that can go both ways (queue depths,
  directory size);
* :class:`Histogram` — fixed upper-bound buckets in the Prometheus
  style.  :meth:`Histogram.snapshot` returns an immutable
  :class:`HistogramSnapshot` that merges associatively across peers —
  the gossip-aggregation-friendly shape (cf. Cafaro et al., mining
  frequent items in unstructured P2P networks) — and estimates
  quantiles by linear interpolation within a bucket.

:meth:`Registry.render_text` emits the Prometheus text exposition format
(``# HELP`` / ``# TYPE`` plus samples, histograms as cumulative
``_bucket{le=...}`` series with ``_sum`` and ``_count``), so any scraper
pointed at a dump of a live node can ingest it.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.obs.trace import TraceLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "Registry",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
    "DEFAULT_COUNT_BOUNDS",
]

#: Per-request latency buckets (seconds): sub-millisecond loopback up to
#: multi-second WAN retries.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Message/filter size buckets (bytes): Table 1/2 quantities span a few
#: bytes (AE digests) up to tens of KB (uncompressed 50 KB filters).
DEFAULT_SIZE_BOUNDS: tuple[float, ...] = (
    16, 64, 256, 1024, 4096, 16384, 65536, 262144,
)

#: Small-cardinality buckets (peers contacted per query, wave sizes).
DEFAULT_COUNT_BOUNDS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


class Counter:
    """A monotonically increasing float total."""

    __slots__ = ("component", "name", "help", "_value", "_lock")

    def __init__(self, component: str, name: str, help: str = "") -> None:
        self.component = component
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the total."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        # Direct acquire/release beats the context-manager protocol on
        # this hot path (no __enter__/__exit__ lookups per increment).
        lock = self._lock
        lock.acquire()
        self._value += amount
        lock.release()

    @property
    def value(self) -> float:
        """The current total."""
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.component}.{self.name}={self._value})"


class Gauge:
    """A value that can rise and fall (depths, sizes, temperatures)."""

    __slots__ = ("component", "name", "help", "_value", "_lock")

    def __init__(self, component: str, name: str, help: str = "") -> None:
        self.component = component
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the current value."""
        value = float(value)
        lock = self._lock
        lock.acquire()
        self._value = value
        lock.release()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        lock = self._lock
        lock.acquire()
        self._value += amount
        lock.release()

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """The current value."""
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.component}.{self.name}={self._value})"


@dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable, mergeable view of a histogram at one instant.

    ``bounds`` are the finite bucket upper bounds; ``counts`` has one
    entry per bound plus a final overflow (``+Inf``) bucket.  Merging is
    element-wise addition, so it is associative and commutative — a set
    of per-peer snapshots can be gossip-aggregated in any order and
    every peer converges to the same community histogram.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    total: int
    sum: float

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Combine two snapshots of identically-bucketed histograms."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        return HistogramSnapshot(
            self.bounds,
            tuple(a + b for a, b in zip(self.counts, other.counts)),
            self.total + other.total,
            self.sum + other.sum,
        )

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) from the buckets.

        Linear interpolation inside the containing bucket, Prometheus
        style: observations in the overflow bucket clamp to the highest
        finite bound.  Returns 0.0 for an empty snapshot.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            next_cumulative = cumulative + count
            if rank <= next_cumulative and count > 0:
                frac = (rank - cumulative) / count
                return lower + frac * (bound - lower)
            cumulative = next_cumulative
            lower = bound
        return self.bounds[-1] if self.bounds else 0.0

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0


class Histogram:
    """Fixed-bucket histogram of non-negative observations."""

    __slots__ = ("component", "name", "help", "bounds", "_counts", "_sum", "_lock")

    def __init__(
        self,
        component: str,
        name: str,
        help: str = "",
        bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS,
    ) -> None:
        self.component = component
        self.name = name
        self.help = help
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        if not all(math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        # Bisect is overkill for ~14 buckets; a linear scan is cheaper
        # than the function-call overhead on this hot path.
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                idx = i
                break
        lock = self._lock
        lock.acquire()
        self._counts[idx] += 1
        self._sum += value
        lock.release()

    def snapshot(self) -> HistogramSnapshot:
        """An immutable copy of the current state."""
        with self._lock:
            counts = tuple(self._counts)
            total = sum(counts)
            return HistogramSnapshot(self.bounds, counts, total, self._sum)

    def __repr__(self) -> str:
        snap = self.snapshot()
        return f"Histogram({self.component}.{self.name} n={snap.total})"


def _prom_name(component: str, name: str) -> str:
    """``(component, name)`` -> a legal Prometheus metric name."""
    raw = f"planetp_{component}_{name}"
    return "".join(c if c.isalnum() or c == "_" else "_" for c in raw)


class Registry:
    """One process-wide home for every instrument, keyed by component.

    ``clock`` stamps trace events (inject a
    :class:`~repro.net.chaos.VirtualClock` for deterministic tests);
    the embedded :attr:`trace` ring buffer makes the registry the single
    observability hand-off between a node and its tests.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.time,
        trace_capacity: int = 1024,
    ) -> None:
        self.clock = clock
        self.trace = TraceLog(capacity=trace_capacity, clock=clock)
        self._instruments: dict[tuple[str, str], Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------

    def _get_or_create(self, cls, component: str, name: str, **kwargs):
        key = (component, name)
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"{component}.{name} is a {type(existing).__name__}, "
                        f"not a {cls.__name__}"
                    )
                return existing
            instrument = cls(component, name, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, component: str, name: str, help: str = "") -> Counter:
        """Get or create the counter ``component.name``."""
        return self._get_or_create(Counter, component, name, help=help)

    def gauge(self, component: str, name: str, help: str = "") -> Gauge:
        """Get or create the gauge ``component.name``."""
        return self._get_or_create(Gauge, component, name, help=help)

    def histogram(
        self,
        component: str,
        name: str,
        help: str = "",
        bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS,
    ) -> Histogram:
        """Get or create the histogram ``component.name``."""
        return self._get_or_create(
            Histogram, component, name, help=help, bounds=bounds
        )

    def emit(self, kind: str, /, **fields) -> None:
        """Shorthand for ``registry.trace.emit(kind, **fields)``."""
        self.trace.emit(kind, **fields)

    # -- introspection -------------------------------------------------------

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        """Every registered instrument, sorted by (component, name)."""
        with self._lock:
            return [self._instruments[k] for k in sorted(self._instruments)]

    def value(self, component: str, name: str) -> float:
        """Current value of a counter/gauge (0.0 if never registered)."""
        instrument = self._instruments.get((component, name))
        if instrument is None:
            return 0.0
        if isinstance(instrument, Histogram):
            raise TypeError(f"{component}.{name} is a histogram; use samples()")
        return instrument.value

    def snapshot(self, component: str, name: str) -> HistogramSnapshot | None:
        """Snapshot of the histogram ``component.name`` (None if absent
        or not a histogram) — the quantile source for latency reporting."""
        instrument = self._instruments.get((component, name))
        if not isinstance(instrument, Histogram):
            return None
        return instrument.snapshot()

    def samples(self) -> list[tuple[str, float]]:
        """Every sample as flat ``(prometheus_name, value)`` pairs.

        Histograms flatten into their cumulative ``_bucket{le=...}``
        series plus ``_sum`` and ``_count`` — the exact sample set
        :meth:`render_text` would emit, and what travels in a
        ``StatsResponse``.
        """
        out: list[tuple[str, float]] = []
        for instrument in self.instruments():
            base = _prom_name(instrument.component, instrument.name)
            if isinstance(instrument, (Counter, Gauge)):
                out.append((base, instrument.value))
            else:
                snap = instrument.snapshot()
                cumulative = 0
                for bound, count in zip(snap.bounds, snap.counts):
                    cumulative += count
                    out.append((f'{base}_bucket{{le="{_fmt(bound)}"}}', cumulative))
                out.append((f'{base}_bucket{{le="+Inf"}}', snap.total))
                out.append((f"{base}_sum", snap.sum))
                out.append((f"{base}_count", snap.total))
        return out

    def render_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for instrument in self.instruments():
            base = _prom_name(instrument.component, instrument.name)
            help_text = instrument.help or f"{instrument.component} {instrument.name}"
            lines.append(f"# HELP {base} {_escape_help(help_text)}")
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {base} counter")
                lines.append(f"{base} {_fmt(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {base} gauge")
                lines.append(f"{base} {_fmt(instrument.value)}")
            else:
                snap = instrument.snapshot()
                lines.append(f"# TYPE {base} histogram")
                cumulative = 0
                for bound, count in zip(snap.bounds, snap.counts):
                    cumulative += count
                    lines.append(f'{base}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
                lines.append(f'{base}_bucket{{le="+Inf"}} {snap.total}')
                lines.append(f"{base}_sum {_fmt(snap.sum)}")
                lines.append(f"{base}_count {snap.total}")
        return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints bare)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")
