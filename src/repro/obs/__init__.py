"""repro.obs — runtime observability for live PlanetP nodes.

A dependency-free metrics + trace subsystem (stdlib only, importable
from anywhere in the tree without cycles):

``metrics``  :class:`Counter` / :class:`Gauge` / :class:`Histogram`
             with mergeable snapshots and quantile estimation, gathered
             in a :class:`Registry` keyed by component, rendered as
             Prometheus text exposition
``trace``    :class:`TraceLog` — a ring buffer of structured protocol
             events with JSON-lines export

Most call sites want the **process-global registry**: a live node, its
transport, the search client, and the Bloom compressor all record into
:func:`global_registry` by default, so one ``StatsRequest`` poll (or one
``registry.render_text()`` scrape) observes the whole process.  Tests
that need isolation construct private :class:`Registry` instances and
pass them down explicitly.
"""

from repro.obs.metrics import (
    DEFAULT_COUNT_BOUNDS,
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_SIZE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    Registry,
)
from repro.obs.trace import TraceEvent, TraceLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "Registry",
    "TraceEvent",
    "TraceLog",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
    "DEFAULT_COUNT_BOUNDS",
    "global_registry",
    "set_global_registry",
]

_GLOBAL: Registry | None = None


def global_registry() -> Registry:
    """The process-wide default :class:`Registry` (created lazily)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = Registry()
    return _GLOBAL


def set_global_registry(registry: Registry) -> Registry:
    """Replace the process-wide registry; returns the previous one.

    Used by tests that want a clean slate, and by embedders that manage
    their own registry lifetimes.
    """
    global _GLOBAL
    previous = global_registry()
    _GLOBAL = registry
    return previous
