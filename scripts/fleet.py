#!/usr/bin/env python
"""Launch a PlanetP fleet and judge it against the paper's invariants.

Stands up N real ``python -m repro.net`` processes on localhost ports,
runs the seeded scenario (staggered join, publish waves, ranked
searches, SIGKILL/warm-restart), and prints the resulting
:class:`repro.fleet.FleetReport`.  Exits 1 if any acceptance criterion
is violated, so it doubles as a CI gate and a local soak tool::

    PYTHONPATH=src python scripts/fleet.py --nodes 25
    PYTHONPATH=src python scripts/fleet.py --nodes 500 --seed 7 \
        --gossip-interval 2.5 --slack 180 --log-dir /tmp/fleet-logs
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fleet import FleetSpec, run_scenario


def build_parser() -> argparse.ArgumentParser:
    spec = FleetSpec()  # one source of defaults: the dataclass itself
    parser = argparse.ArgumentParser(
        prog="fleet.py",
        description=(__doc__ or "run a PlanetP fleet").splitlines()[0],
    )
    parser.add_argument("--nodes", type=int, default=spec.num_nodes,
                        help="fleet size (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=spec.seed,
                        help="scenario seed; same seed, same run (default: %(default)s)")
    parser.add_argument("--gossip-interval", type=float,
                        default=spec.gossip_interval_s, metavar="SECONDS",
                        help="per-node gossip interval T_g (default: %(default)s)")
    parser.add_argument("--bloom-bits", type=int, default=spec.bloom_bits,
                        help="Bloom filter bits per node (default: %(default)s)")
    parser.add_argument("--waves", type=int, default=spec.num_waves,
                        help="publish waves to inject (default: %(default)s)")
    parser.add_argument("--crashes", type=int, default=spec.num_crashes,
                        help="nodes to SIGKILL and warm-restart (default: %(default)s)")
    parser.add_argument("--launch-batch", type=int, default=spec.launch_batch,
                        help="nodes launched per batch (default: %(default)s)")
    parser.add_argument("--ready-timeout", type=float,
                        default=spec.ready_timeout_s, metavar="SECONDS",
                        help="per-node readiness deadline (default: %(default)s)")
    parser.add_argument("--slack", type=float, default=spec.convergence_slack_s,
                        metavar="SECONDS",
                        help="additive slack in the convergence bound (default: %(default)s)")
    parser.add_argument("--partial-view", action="store_true",
                        help="run every node in sharded partial-view mode "
                             "(sublinear directory memory)")
    parser.add_argument("--shards", type=int, default=spec.num_shards,
                        help="shard count under --partial-view "
                             "(default: 0 = ~sqrt(nodes))")
    parser.add_argument("--view-sample", type=int, default=spec.view_sample,
                        help="out-of-shard sample size under --partial-view "
                             "(default: %(default)s)")
    parser.add_argument("--root", type=Path, default=None,
                        help="working directory for corpora and data dirs "
                             "(default: a temp dir, removed afterwards)")
    parser.add_argument("--log-dir", type=Path, default=None,
                        help="keep per-node logs here (default: under --root)")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the report as JSON to PATH ('-' for stdout)")
    parser.add_argument("--min-recall", type=float, default=0.98,
                        help="acceptance bar for mean recall vs. the oracle "
                             "(default: %(default)s)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = FleetSpec(
            num_nodes=args.nodes,
            seed=args.seed,
            gossip_interval_s=args.gossip_interval,
            bloom_bits=args.bloom_bits,
            num_waves=args.waves,
            num_crashes=args.crashes,
            launch_batch=args.launch_batch,
            ready_timeout_s=args.ready_timeout,
            convergence_slack_s=args.slack,
            partial_view=args.partial_view,
            num_shards=args.shards,
            view_sample=args.view_sample,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    progress = None if args.quiet else (lambda msg: print(msg, flush=True))
    report = run_scenario(
        spec, root=args.root, log_dir=args.log_dir, progress=progress
    )

    payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    if args.json is not None:
        if str(args.json) == "-":
            print(payload)
        else:
            args.json.write_text(payload + "\n")

    print(f"fleet of {report.num_nodes} (seed {report.seed}):")
    print(f"  launch            {report.launch_s:8.1f}s")
    print(f"  convergence       {report.convergence_s:8.1f}s  "
          f"(bound {report.convergence_bound_s:.1f}s)")
    print(f"  recall            {report.recall:8.3f}   "
          f"(worst query {report.recall_min:.3f})")
    print(f"  stale serves      {report.stale_serves:8d}")
    if report.wave_propagation_s:
        waves = ", ".join(f"{s:.1f}s" for s in report.wave_propagation_s)
        print(f"  wave propagation  {waves}")
    if report.crash_pids:
        print(f"  crash/restart     pids {report.crash_pids}, "
              f"recovered in {report.recovery_s:.1f}s, "
              f"recall after {report.recall_after_recovery:.3f}")
    print(f"  gossip            {report.gossip_bytes_per_round:8.0f} B/round, "
          f"{report.gossip_rounds_per_node:.0f} rounds/node")
    if report.partial_view:
        print(f"  partial view      {report.directory_filter_bytes_per_node:8.0f} "
              f"filter B/node, {report.partialview_bytes_per_node:.0f} "
              f"maintenance B/node")
    print(f"  cleanup           {report.forced_kills} forced kill(s), "
          f"{report.leaked_processes} leaked process(es), "
          f"{report.leaked_ports} leaked port(s)")

    violations = report.violations(min_recall=args.min_recall)
    if violations:
        print("VIOLATIONS:", file=sys.stderr)
        for line in violations:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print("all fleet invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
